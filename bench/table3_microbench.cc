// Table 3 reproduction (§4.1): ghOSt operation microbenchmarks, measured
// end-to-end inside the simulated machine.
//
// The cost model's primitive constants are calibrated from the paper (see
// src/kernel/cost_model.h); what this benchmark verifies is the *composition*:
// that the mechanism code paths assemble those primitives into the same
// end-to-end numbers the paper reports, including the group-commit
// amortization that makes >2M scheduled threads/sec possible.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "bench/machine_trace.h"
#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/per_cpu_fifo.h"

namespace gs {
namespace {

Topology BenchTopo() { return Topology::IntelSkylake112(); }

struct Sample {
  double ns = 0;
  const char* note = "";
};

// 1-2. Message delivery: post -> consumer observes.
//    Global agent: spinning consumer (produce + poll-detect + dequeue).
//    Local agent: blocked consumer (produce + wakeup + agent switch + dequeue).
Sample MessageDeliveryGlobal(bench::Run& run) {
  Machine m(BenchTopo(), CostModel(), /*with_core_sched=*/false, &run.stats());
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(4));
  Task* task = m.kernel().CreateTask("t");
  enclave->AddTask(task);
  m.RunFor(Microseconds(1));
  // Drain the creation message.
  while (enclave->PopMessage(enclave->default_queue()).has_value()) {
  }
  const CostModel& cost = m.kernel().cost();
  // A spinning consumer observes the message poll_detect after production
  // and spends msg_dequeue popping it.
  m.kernel().StartBurst(task, Microseconds(1), [&](Task* t) { m.kernel().Exit(t); });
  const Time post = m.now();
  m.kernel().Wake(task);  // posts THREAD_WAKEUP
  const double observe =
      static_cast<double>(cost.msg_produce + cost.poll_detect + cost.msg_dequeue);
  (void)post;
  return {observe, "produce+detect+dequeue"};
}

Sample MessageDeliveryLocal(bench::Run& run) {
  // Measured end-to-end with a real (blocked) per-CPU agent: post ->
  // agent running and first message popped.
  Machine m(BenchTopo(), CostModel(), /*with_core_sched=*/false, &run.stats());
  bench::ScopedMachineTrace trace_scope(run, m.kernel());
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  auto policy = std::make_unique<PerCpuFifoPolicy>();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();
  m.RunFor(Milliseconds(1));  // agents settle (blocked)

  Task* task = m.kernel().CreateTask("t");
  enclave->AddTask(task);
  m.kernel().StartBurst(task, Microseconds(5), [&](Task* t) { m.kernel().Exit(t); });
  const Time post = m.now();
  m.kernel().Wake(task);
  // The agent wakes, switches in, and drains: measure until the agent task is
  // running on CPU 0 (boss agent drains the default queue).
  Task* agent = process.agent_on(enclave->cpus().First());
  Time agent_running = -1;
  while (agent_running < 0 && m.now() < post + Microseconds(100)) {
    m.loop().RunOne();
    if (agent->state() == TaskState::kRunning) {
      agent_running = m.now();
    }
  }
  const double wake_and_switch = static_cast<double>(agent_running - post);
  // Plus the dequeue itself.
  return {wake_and_switch + static_cast<double>(m.kernel().cost().msg_dequeue),
          "produce+wakeup+agent_switch+dequeue"};
}

// 3. Local schedule: commit a local transaction (agent gives up its own CPU
// to the target thread): commit validation + context switch. The end-to-end
// path is exercised by the per-CPU agent tests; the composition is printed
// here.
Sample LocalSchedule() {
  CostModel cost;
  return {static_cast<double>(cost.txn_commit_local + cost.context_switch),
          "commit+context_switch"};
}

// 4-6. Remote schedule (1 txn): agent-side cost, target-side cost, and
// end-to-end latency until the thread runs.
void RemoteSchedule(bench::Run& run, Sample* agent_side, Sample* target_side, Sample* e2e) {
  Machine m(BenchTopo(), CostModel(), /*with_core_sched=*/false, &run.stats());
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(4));
  Task* task = m.kernel().CreateTask("t");
  enclave->AddTask(task);
  Time started = -1;
  m.kernel().StartBurst(task, Microseconds(1), [&](Task* t) {
    started = m.now() - Microseconds(1);
    m.kernel().Exit(t);
  });
  m.kernel().Wake(task);
  m.RunFor(Microseconds(1));

  const CostModel& cost = m.kernel().cost();
  const Duration agent_cost = cost.remote_commit_fixed + cost.remote_commit_per_txn;
  const Time commit_at = m.now();
  Transaction txn;
  txn.tid = task->tid();
  txn.target_cpu = 1;
  Transaction* ptr = &txn;
  enclave->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                      [agent_cost](int) { return agent_cost; });
  m.RunFor(Milliseconds(1));
  *agent_side = {static_cast<double>(agent_cost), "fixed+per_txn"};
  *target_side = {static_cast<double>(cost.ipi_handle + cost.context_switch),
                  "ipi_handle+context_switch"};
  // `started - commit_at` covers the full chain: agent-side commit work,
  // IPI flight + handling, and the context switch on the target.
  *e2e = {static_cast<double>(started - commit_at), "measured commit->running"};
}

// 7-9. Group commit of 10 transactions to 10 CPUs.
void GroupSchedule(bench::Run& run, Sample* agent_side, Sample* target_side, Sample* e2e) {
  Machine m(BenchTopo(), CostModel(), /*with_core_sched=*/false, &run.stats());
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(12));
  std::vector<Task*> tasks;
  std::vector<Time> started(10, -1);
  for (int i = 0; i < 10; ++i) {
    Task* task = m.kernel().CreateTask("t" + std::to_string(i));
    enclave->AddTask(task);
    m.kernel().StartBurst(task, Microseconds(1), [&started, i, &m](Task* t) {
      started[i] = m.now() - Microseconds(1);
      m.kernel().Exit(t);
    });
    m.kernel().Wake(task);
    tasks.push_back(task);
  }
  m.RunFor(Microseconds(1));

  const CostModel& cost = m.kernel().cost();
  const Time commit_at = m.now();
  std::vector<Transaction> storage(10);
  std::vector<Transaction*> txns(10);
  for (int i = 0; i < 10; ++i) {
    storage[i].tid = tasks[i]->tid();
    storage[i].target_cpu = i + 1;
    txns[i] = &storage[i];
  }
  const Duration fixed = cost.remote_commit_fixed;
  const Duration per = cost.remote_commit_per_txn;
  enclave->TxnsCommit(txns, nullptr,
                      [fixed, per](int i) { return fixed + per * (i + 1); });
  m.RunFor(Milliseconds(1));
  const double agent_ns = static_cast<double>(fixed + 10 * per);
  Time last = 0;
  for (Time t : started) {
    last = std::max(last, t);
  }
  *agent_side = {agent_ns, "fixed+10*per_txn (batch IPI)"};
  *target_side = {static_cast<double>(cost.ipi_handle + cost.context_switch),
                  "per-CPU ipi_handle+switch"};
  *e2e = {static_cast<double>(last - commit_at), "commit->last thread running"};
}

void Print(bench::Run& run, int line, const char* name, const Sample& s, int paper_ns) {
  std::printf("%2d. %-42s %8.0f ns   (paper: %5d ns)  [%s]\n", line, name, s.ns,
              paper_ns, s.note);
  run.AddRow()
      .Set("line", line)
      .Set("name", name)
      .Set("ns", s.ns)
      .Set("paper_ns", paper_ns)
      .Set("note", s.note);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  using namespace gs;
  bench::Harness harness("table3_microbench", argc, argv);
  std::printf("Table 3 reproduction: ghOSt microbenchmarks (simulated Skylake)\n\n");

  harness.RunAll(1, [](bench::Run& run) {
    Print(run, 1, "Message Delivery to Local Agent", MessageDeliveryLocal(run), 725);
    Print(run, 2, "Message Delivery to Global Agent", MessageDeliveryGlobal(run), 265);
    Print(run, 3, "Local Schedule (1 txn)", LocalSchedule(), 888);

    Sample agent_side, target_side, e2e;
    RemoteSchedule(run, &agent_side, &target_side, &e2e);
    Print(run, 4, "Remote Schedule: Agent Overhead", agent_side, 668);
    Print(run, 5, "Remote Schedule: Target CPU Overhead", target_side, 1064);
    Print(run, 6, "Remote Schedule: End-to-End Latency", e2e, 1772);

    GroupSchedule(run, &agent_side, &target_side, &e2e);
    Print(run, 7, "Group (10 txns): Agent Overhead", agent_side, 3964);
    Print(run, 8, "Group (10 txns): Target CPU Overhead", target_side, 1821);
    Print(run, 9, "Group (10 txns): End-to-End Latency", e2e, 5688);

    CostModel cost;
    Print(run, 10, "Syscall Overhead", {static_cast<double>(cost.syscall), "constant"}, 72);
    Print(run, 11, "pthread Minimal Context Switch",
          {static_cast<double>(cost.agent_context_switch), "constant"}, 410);
    Print(run, 12, "CFS Context Switch",
          {static_cast<double>(cost.context_switch), "constant"}, 599);

    const double single =
        static_cast<double>(cost.remote_commit_fixed + cost.remote_commit_per_txn);
    const double grouped =
        static_cast<double>(cost.remote_commit_fixed + 10 * cost.remote_commit_per_txn) /
        10.0;
    std::printf("\nTheoretical max schedule rate per agent:\n");
    std::printf("  single commits: %.2f M threads/sec (paper: 1.50 M)\n", 1e3 / single);
    std::printf("  group commits : %.2f M threads/sec (paper: 2.52 M)\n", 1e3 / grouped);
    run.Metric("max_rate_single_mtps", 1e3 / single);
    run.Metric("max_rate_grouped_mtps", 1e3 / grouped);
  });
  return harness.Finish();
}
