// A µs-scale key-value server scheduled by the ghOSt Shinjuku policy (§4.2).
//
// The server really executes GETs and range SCANs against MiniRocks (the
// in-memory LSM-style store); scheduling and service times run on the
// simulated machine. Short GETs and rare long SCANs form the dispersive mix
// the Shinjuku policy's 30 µs preemption is designed for: without it, a SCAN
// monopolizes a CPU for milliseconds while GETs queue.
#include <cstdio>
#include <memory>

#include "src/agent/agent_process.h"
#include "src/base/rng.h"
#include "src/ghost/machine.h"
#include "src/policies/shinjuku.h"
#include "src/workloads/request_service.h"
#include "src/workloads/rocksdb.h"

using namespace gs;

namespace {

constexpr Duration kGetService = Microseconds(8);
constexpr Duration kScanService = Milliseconds(4);
constexpr double kScanFraction = 0.01;
constexpr size_t kKeys = 20'000;

}  // namespace

int main() {
  // Real database contents.
  MiniRocks db;
  db.LoadSyntheticKeys(kKeys, /*value_bytes=*/64);

  Machine machine(Topology::Make("kv-server", 1, 6, 2, 6));
  auto enclave = machine.CreateEnclave(CpuMask::AllUpTo(12));
  AgentProcess agents(&machine.kernel(), machine.ghost_class(), enclave.get(),
                      MakeShinjukuPolicy(Microseconds(30), /*global_cpu=*/0));
  agents.Start();

  ThreadPoolServer server(&machine.kernel(), {.num_workers = 64});
  for (Task* worker : server.workers()) {
    enclave->AddTask(worker);
  }

  // The load generator picks an operation, executes it against MiniRocks for
  // real, and submits the corresponding CPU demand to the scheduled pool.
  // (The sink chooses service times itself; the model argument is a
  // placeholder the sink ignores.)
  Rng rng(2024);
  int64_t gets = 0, scans = 0, hits = 0;
  FixedServiceModel placeholder(kGetService);
  PoissonLoadGen gen(
      &machine.loop(), &placeholder, /*requests_per_sec=*/120'000, /*seed=*/7,
      [&](Time arrival, Duration) {
        if (rng.NextBernoulli(kScanFraction)) {
          const uint64_t start = rng.NextBounded(kKeys);
          auto rows = db.Scan(MiniRocks::KeyFor(start), MiniRocks::KeyFor(start + 500), 500);
          (void)rows;
          ++scans;
          server.Submit(arrival, kScanService);
        } else {
          hits += db.Get(MiniRocks::KeyFor(rng.NextBounded(kKeys))).has_value() ? 1 : 0;
          ++gets;
          server.Submit(arrival, kGetService);
        }
      });
  gen.Start(Milliseconds(500));
  machine.RunFor(Milliseconds(600));

  std::printf("rocksdb_server: served %lld GETs (%lld hits) and %lld SCANs\n",
              (long long)gets, (long long)hits, (long long)scans);
  std::printf("completed=%lld latency: %s\n", (long long)server.completed(),
              server.latency().Summary().c_str());
  std::printf("db: %zu keys, %llu gets, %llu scans, last_seq=%llu\n",
              db.ApproximateSize(), (unsigned long long)db.stats().gets,
              (unsigned long long)db.stats().scans,
              (unsigned long long)db.last_sequence());
  auto* policy = static_cast<CentralizedFifoPolicy*>(agents.policy());
  std::printf("shinjuku policy: %llu schedules, %llu preemptions (30us slice kept "
              "GET tails low despite %lld multi-ms scans)\n",
              (unsigned long long)policy->scheduled(),
              (unsigned long long)policy->preemptions(), (long long)scans);
  return 0;
}
