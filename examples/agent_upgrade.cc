// Non-disruptive policy upgrade and crash fallback (§3.4).
//
// Part 1 — in-place upgrade: threads run under a per-CPU FIFO agent; the
// agent exits; a *new* agent process with a different policy (centralized
// Shinjuku) attaches to the same enclave, extracts thread state from the
// kernel, and resumes scheduling. The threads never stop making progress and
// never leave the enclave — no machine or application restart.
//
// Part 2 — crash fallback: the agents die with no replacement; the watchdog
// destroys the enclave and every thread falls back to CFS, still running.
#include <cstdio>
#include <memory>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/policies/shinjuku.h"

using namespace gs;

namespace {

// Self-rearming worker cycle: burn 300us, sleep 200us, repeat — plain
// recursion instead of a heap-allocated self-referential closure.
void ArmBurst(Machine& machine, Task* t) {
  Kernel& kernel = machine.kernel();
  kernel.StartBurst(t, Microseconds(300), [&machine, &kernel](Task* task) {
    kernel.Block(task);
    machine.loop().ScheduleAfter(Microseconds(200), [&machine, &kernel, task] {
      ArmBurst(machine, task);
      kernel.Wake(task);
    });
  });
}

Task* SpawnWorker(Machine& machine, Enclave& enclave, int i) {
  Kernel& kernel = machine.kernel();
  Task* t = kernel.CreateTask("worker/" + std::to_string(i));
  enclave.AddTask(t);
  ArmBurst(machine, t);
  kernel.Wake(t);
  return t;
}

}  // namespace

int main() {
  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(50);
  config.watchdog_period = Milliseconds(10);

  Machine machine(Topology::Make("upgrade-demo", 1, 4, 1, 4));
  auto enclave = machine.CreateEnclave(CpuMask::AllUpTo(4), config);

  auto old_agents = std::make_unique<AgentProcess>(
      &machine.kernel(), machine.ghost_class(), enclave.get(),
      std::make_unique<PerCpuFifoPolicy>());
  old_agents->Start();

  std::vector<Task*> workers;
  for (int i = 0; i < 6; ++i) {
    workers.push_back(SpawnWorker(machine, *enclave, i));
  }
  machine.RunFor(Milliseconds(20));
  Duration before_upgrade = 0;
  for (Task* w : workers) {
    before_upgrade += w->total_runtime();
  }
  std::printf("t=%2lldms  per-CPU FIFO agent running, worker cpu time %lld us\n",
              (long long)(machine.now() / 1000000), (long long)(before_upgrade / 1000));

  // --- In-place upgrade: old agent exits, new policy attaches. -------------
  old_agents->Shutdown();
  auto new_agents = std::make_unique<AgentProcess>(
      &machine.kernel(), machine.ghost_class(), enclave.get(),
      MakeShinjukuPolicy(Microseconds(50), /*global_cpu=*/0));
  new_agents->Start();
  std::printf("upgraded policy %s -> %s without touching the threads\n",
              "per-cpu-fifo", new_agents->policy()->name());

  machine.RunFor(Milliseconds(20));
  Duration after_upgrade = 0;
  for (Task* w : workers) {
    after_upgrade += w->total_runtime();
  }
  std::printf("t=%2lldms  centralized agent running, worker cpu time %lld us (+%lld)\n",
              (long long)(machine.now() / 1000000), (long long)(after_upgrade / 1000),
              (long long)((after_upgrade - before_upgrade) / 1000));
  if (after_upgrade <= before_upgrade) {
    std::printf("ERROR: threads stalled across the upgrade\n");
    return 1;
  }

  // --- Crash: no replacement agent; watchdog falls everything back to CFS. --
  new_agents->Crash();
  std::printf("agents crashed; waiting for the watchdog...\n");
  machine.RunFor(Milliseconds(200));
  Duration after_crash = 0;
  for (Task* w : workers) {
    after_crash += w->total_runtime();
  }
  std::printf("t=%lldms enclave destroyed=%s, threads now under %s, cpu time %lld us (+%lld)\n",
              (long long)(machine.now() / 1000000),
              enclave->destroyed() ? "yes" : "no",
              workers[0]->sched_class()->name(), (long long)(after_crash / 1000),
              (long long)((after_crash - after_upgrade) / 1000));
  const bool ok = enclave->destroyed() && after_crash > after_upgrade &&
                  workers[0]->sched_class() == machine.kernel().default_class();
  std::printf("%s\n", ok ? "crash fallback held: no thread was lost"
                         : "ERROR: fallback failed");
  return ok ? 0 : 1;
}
