// Secure VM scheduling (§4.5): protect VMs from cross-hyperthread attacks.
//
// Runs more VMs than physical cores so the core-granular EDF policy must
// rotate whole cores between VMs via synchronized group commits, and
// verifies the L1TF/MDS mitigation invariant throughout: no physical core
// ever runs vCPUs of two different VMs at the same instant.
#include <cstdio>
#include <memory>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/vm_core_sched.h"
#include "src/workloads/vm_workload.h"

using namespace gs;

int main() {
  // 6 physical cores / 12 CPUs hosting 10 VMs x 2 vCPUs: heavy
  // oversubscription forces constant core rotation.
  Machine machine(Topology::Make("vm-host", 1, 6, 2, 6));
  auto enclave = machine.CreateEnclave(machine.kernel().topology().AllCpus());

  VmWorkload vms(&machine.kernel(),
                 {.num_vms = 10, .vcpus_per_vm = 2, .work_per_vcpu = Milliseconds(200)});
  VmCoreSchedPolicy::Options options;
  options.global_cpu = 0;
  options.slice = Milliseconds(6);
  VmWorkload* vms_ptr = &vms;
  options.cookie_of = [vms_ptr](int64_t tid) { return vms_ptr->CookieOf(tid); };

  AgentProcess agents(&machine.kernel(), machine.ghost_class(), enclave.get(),
                      std::make_unique<VmCoreSchedPolicy>(options));
  agents.Start();
  for (Task* vcpu : vms.vcpus()) {
    enclave->AddTask(vcpu);
  }
  vms.StartSecuritySampler(Microseconds(100));
  vms.Start();

  while (!vms.AllDone() && machine.now() < Seconds(10)) {
    machine.RunFor(Milliseconds(50));
  }

  auto* policy = static_cast<VmCoreSchedPolicy*>(agents.policy());
  std::printf("secure_vms: %d/%d vCPUs completed in %.3f s\n", vms.completed(),
              static_cast<int>(vms.vcpus().size()), ToSeconds(vms.finish_time()));
  std::printf("core placements (synchronized group commits): %llu, group failures: %llu\n",
              (unsigned long long)policy->cores_scheduled(),
              (unsigned long long)policy->group_failures());
  std::printf("cross-VM sibling co-residencies observed: %llu%s\n",
              (unsigned long long)vms.coresidency_violations(),
              vms.coresidency_violations() == 0 ? "  <- the L1TF/MDS mitigation held"
                                                : "  <- SECURITY VIOLATION");
  return vms.coresidency_violations() == 0 ? 0 : 1;
}
