// Quickstart: delegate scheduling of a few threads to a userspace agent.
//
// This walks the whole ghOSt flow end to end on a small simulated machine:
//   1. build a SimulationContext (one owned machine: kernel + scheduling-
//      class hierarchy + stats registry + RNG seed),
//   2. carve out an enclave over some CPUs,
//   3. attach an agent process running a per-CPU FIFO policy (Fig 3),
//   4. move native threads into the enclave,
//   5. watch the policy schedule them, then inspect statistics.
#include <cstdio>
#include <memory>

#include "src/policies/per_cpu_fifo.h"
#include "src/sim/simulation.h"

using namespace gs;

namespace {

// One worker cycle: burn 200us, then either exit (after 5 bursts) or sleep
// 100us and go again. Self-rearming via plain recursion — no heap-allocated
// self-referential closure.
void ArmBurst(Kernel& kernel, SimulationContext& sim, Task* t, int remaining) {
  kernel.StartBurst(t, Microseconds(200),
                    [&kernel, &sim, remaining](Task* task) {
    if (remaining == 1) {
      kernel.Exit(task);
      return;
    }
    kernel.Block(task);
    sim.loop().ScheduleAfter(Microseconds(100), [&kernel, &sim, task, remaining] {
      ArmBurst(kernel, sim, task, remaining - 1);
      kernel.Wake(task);
    });
  });
}

}  // namespace

int main() {
  // A small machine as one owned value: 1 socket, 4 cores, no SMT. The
  // context owns the event loop, kernel, and this run's stats registry —
  // several of these can coexist (even on different threads) without
  // sharing anything.
  SimulationContext::Options options;
  options.topology = Topology::Make("quickstart", 1, 4, 1, 4);
  options.seed = 1;
  options.enable_stats = true;
  SimulationContext sim(std::move(options));
  Kernel& kernel = sim.kernel();

  // The enclave owns CPUs 0-3; its threads are scheduled by our agent.
  auto enclave = sim.CreateEnclave(CpuMask::AllUpTo(4));

  // Launch the agent process: one agent pthread pinned per enclave CPU,
  // running the per-CPU FIFO policy from userspace.
  auto agents =
      sim.CreateAgentProcess(enclave.get(), std::make_unique<PerCpuFifoPolicy>());
  agents->Start();

  // Create eight native threads that each perform 5 bursts of 200us of work
  // with 100us sleeps in between, then exit. AddTask() moves them into the
  // enclave: from now on the *agent*, not the kernel, decides where and when
  // they run.
  std::vector<Task*> threads;
  for (int i = 0; i < 8; ++i) {
    Task* t = kernel.CreateTask("worker/" + std::to_string(i));
    enclave->AddTask(t);
    ArmBurst(kernel, sim, t, 5);
    kernel.Wake(t);
    threads.push_back(t);
  }

  sim.RunFor(Milliseconds(20));

  std::printf("quickstart: %d threads scheduled by the ghOSt per-CPU FIFO agent\n",
              static_cast<int>(threads.size()));
  for (Task* t : threads) {
    std::printf("  %-10s state=%-8s cpu_time=%lld us (expected 1000)\n",
                t->name().c_str(), ToString(t->state()),
                static_cast<long long>(t->total_runtime() / 1000));
  }
  std::printf("enclave: %llu messages posted, %llu transactions committed, "
              "%llu failed\n",
              (unsigned long long)enclave->messages_posted(),
              (unsigned long long)enclave->txns_committed(),
              (unsigned long long)enclave->txns_failed());
  auto* policy = static_cast<PerCpuFifoPolicy*>(agents->policy());
  std::printf("policy: %llu local schedules, %llu ESTALE retries\n",
              (unsigned long long)policy->scheduled(),
              (unsigned long long)policy->estale_failures());
  return 0;
}
