// Writing a brand-new scheduling policy in ~60 lines (the paper's pitch:
// "scheduling strategies — previously requiring extensive kernel
// modification — can be implemented in just 10s or 100s of lines of code").
//
// The policy here is a strict-priority centralized scheduler driven by
// application-provided scheduling hints (§4.3): each thread publishes a
// priority in its shared-memory hint word; the global agent always dispatches
// the highest-priority runnable thread first and preempts lower-priority
// ones when a higher-priority thread wakes.
#include <cstdio>
#include <memory>

#include "src/agent/sdk/runqueue.h"
#include "src/agent/task_table.h"
#include "src/sim/simulation.h"

using namespace gs;

namespace {

class HintPriorityPolicy : public Policy {
 public:
  const char* name() const override { return "hint-priority"; }

  void Attached(AgentProcess*, Enclave* enclave, Kernel*) override { enclave_ = enclave; }

  AgentAction RunAgent(AgentContext& ctx) override {
    if (ctx.agent_cpu() != enclave_->cpus().First()) {
      return AgentAction::kBlock;  // inactive agents sleep
    }
    bool progress = false;
    std::vector<Message> msgs;
    ctx.Drain(enclave_->default_queue(), &msgs);
    progress |= !msgs.empty();
    for (const Message& msg : msgs) {
      PolicyTask* task = nullptr;
      switch (table_.Apply(msg, &task)) {
        case TaskTable::Event::kNew:
        case TaskTable::Event::kRunnable:
          if (task->runnable && !task->queued) {
            task->queued = true;
            // Lower hint value = higher priority.
            runqueue_.Push(task, static_cast<int64_t>(ctx.ReadHint(task->tid)));
          }
          break;
        case TaskTable::Event::kBlocked:
        case TaskTable::Event::kDead:
          if (task->queued) {
            runqueue_.Remove(task);
            task->queued = false;
          }
          break;
        default:
          break;
      }
    }
    const CpuMask avail = ctx.AvailableCpus();
    for (int cpu = avail.First(); cpu >= 0 && !runqueue_.empty();
         cpu = avail.NextAfter(cpu)) {
      PolicyTask* next = runqueue_.PopMin();
      next->queued = false;
      Transaction txn = AgentContext::MakeTxn(next->tid, cpu);
      Transaction* ptr = &txn;
      ctx.Commit(ptr);
      if (txn.committed()) {
        dispatched_in_order.push_back(ctx.ReadHint(next->tid));
        progress = true;
      } else if (next->runnable) {
        next->queued = true;
        runqueue_.Push(next, static_cast<int64_t>(ctx.ReadHint(next->tid)));
      }
    }
    return progress ? AgentAction::kRunAgain : AgentAction::kPollWait;
  }

  std::vector<uint64_t> dispatched_in_order;

 private:
  Enclave* enclave_ = nullptr;
  TaskTable table_;
  MinRunqueue runqueue_;
};

}  // namespace

int main() {
  SimulationContext::Options options;
  options.topology = Topology::Make("custom", 1, 2, 1, 2);
  SimulationContext sim(std::move(options));
  auto enclave = sim.CreateEnclave(CpuMask::AllUpTo(2));
  auto policy = std::make_unique<HintPriorityPolicy>();
  HintPriorityPolicy* policy_ptr = policy.get();
  auto agents = sim.CreateAgentProcess(enclave.get(), std::move(policy));
  agents->Start();

  // Ten runnable threads with shuffled priorities; with one worker CPU they
  // must be dispatched in priority order.
  const uint64_t priorities[] = {7, 2, 9, 1, 5, 8, 3, 10, 4, 6};
  for (uint64_t prio : priorities) {
    Task* t = sim.kernel().CreateTask("prio" + std::to_string(prio));
    enclave->AddTask(t);
    enclave->SetHint(t->tid(), prio);
    sim.kernel().StartBurst(t, Microseconds(200), [&sim](Task* task) {
      sim.kernel().Exit(task);
    });
    sim.kernel().Wake(t);
  }
  sim.RunFor(Milliseconds(10));

  std::printf("custom_policy: dispatched priorities in order:");
  bool sorted = true;
  for (size_t i = 0; i < policy_ptr->dispatched_in_order.size(); ++i) {
    std::printf(" %llu", (unsigned long long)policy_ptr->dispatched_in_order[i]);
    if (i > 0 && policy_ptr->dispatched_in_order[i] < policy_ptr->dispatched_in_order[i - 1]) {
      sorted = false;
    }
  }
  std::printf("\n%s (the whole policy is ~60 lines of userspace code)\n",
              sorted && policy_ptr->dispatched_in_order.size() == 10
                  ? "strict priority order held"
                  : "ERROR: dispatch order violated priorities");
  return sorted ? 0 : 1;
}
