// Mutation battery for the schedule-space explorer: each historical
// mechanism race is reintroduced through its test seam and the explorer must
// find a violating interleaving within a bounded schedule budget; with the
// fix in place the same search must come back clean. Plus replay/shrink
// round-trips proving that a violating trace re-executes deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/verify/explorer.h"
#include "src/verify/explorer_scenarios.h"

namespace gs {
namespace {

Explorer::Options BoundedDfs() {
  Explorer::Options options;
  options.mode = Explorer::Mode::kExhaustive;
  options.max_schedules = 2000;
  options.max_branch_depth = 64;
  return options;
}

class ExplorerMutationTest
    : public ::testing::TestWithParam<ExplorerScenarioInfo> {};

TEST_P(ExplorerMutationTest, MutantIsCaughtWithinBudget) {
  const ExplorerScenarioInfo& info = GetParam();
  Explorer explorer(MakeExplorerScenario(info.name, /*mutate=*/true),
                    BoundedDfs());
  Explorer::Result result = explorer.Explore();
  ASSERT_TRUE(result.violation_found)
      << info.name << ": no violation in " << result.schedules
      << " schedules (" << result.choice_points << " choice points, depth "
      << result.max_depth << ")";
  EXPECT_FALSE(result.violation.empty());
  // The default schedule must be benign — the bug needs reordering to fire.
  // (An all-zeros trace IS the default schedule, so check by replaying it,
  // not by the trace length.)
  EXPECT_TRUE(explorer.Replay({}).empty())
      << info.name << ": violation fired on the default schedule";
  EXPECT_FALSE(result.shrunk_trace.empty())
      << info.name << ": shrunken trace should retain a non-default choice";
}

TEST_P(ExplorerMutationTest, FixedCodeIsCleanAcrossSameBudget) {
  const ExplorerScenarioInfo& info = GetParam();
  Explorer::Options options = BoundedDfs();
  options.stop_at_first = false;  // sweep the whole budget
  Explorer explorer(MakeExplorerScenario(info.name, /*mutate=*/false), options);
  Explorer::Result result = explorer.Explore();
  EXPECT_FALSE(result.violation_found)
      << info.name << ": fixed code violated: " << result.violation;
  EXPECT_GT(result.choice_points, 0u) << info.name << ": nothing to explore";
}

TEST_P(ExplorerMutationTest, ShrunkTraceReplaysToSameViolation) {
  const ExplorerScenarioInfo& info = GetParam();
  Explorer explorer(MakeExplorerScenario(info.name, /*mutate=*/true),
                    BoundedDfs());
  Explorer::Result result = explorer.Explore();
  ASSERT_TRUE(result.violation_found);
  EXPECT_LE(result.shrunk_trace.size(), result.trace.size());
  // Byte-deterministic replay: both the original and the shrunken trace
  // reproduce the identical violation, twice in a row.
  EXPECT_EQ(explorer.Replay(result.trace), result.violation);
  EXPECT_EQ(explorer.Replay(result.shrunk_trace), result.violation);
  EXPECT_EQ(explorer.Replay(result.shrunk_trace), result.violation);
}

TEST_P(ExplorerMutationTest, RandomWalkAlsoFindsTheMutant) {
  const ExplorerScenarioInfo& info = GetParam();
  Explorer::Options options;
  options.mode = Explorer::Mode::kRandomWalk;
  options.max_schedules = 3000;
  options.seed = 42;
  options.shrink = false;
  Explorer explorer(MakeExplorerScenario(info.name, /*mutate=*/true), options);
  Explorer::Result result = explorer.Explore();
  EXPECT_TRUE(result.violation_found)
      << info.name << ": random walk missed the bug in " << result.schedules
      << " walks";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ExplorerMutationTest,
    ::testing::ValuesIn(AllExplorerScenarios()),
    [](const ::testing::TestParamInfo<ExplorerScenarioInfo>& info) {
      return std::string(info.param.name);
    });

TEST(ExplorerReplayFileTest, SaveLoadRoundTrip) {
  const ExplorerScenarioInfo& info = AllExplorerScenarios().front();
  Explorer explorer(MakeExplorerScenario(info.name, /*mutate=*/true),
                    BoundedDfs());
  Explorer::Result result = explorer.Explore();
  ASSERT_TRUE(result.violation_found);

  const std::string path =
      ::testing::TempDir() + "/explorer_replay_roundtrip.txt";
  ASSERT_TRUE(Explorer::SaveTrace(path, info.name, result.violation,
                                  result.shrunk_trace));
  std::string scenario_name;
  Explorer::ChoiceTrace loaded;
  ASSERT_TRUE(Explorer::LoadTrace(path, &scenario_name, &loaded));
  std::remove(path.c_str());
  EXPECT_EQ(scenario_name, info.name);
  EXPECT_EQ(loaded, result.shrunk_trace);

  // A fresh explorer built from the loaded file reproduces the violation.
  Explorer replayer(MakeExplorerScenario(scenario_name, /*mutate=*/true),
                    BoundedDfs());
  EXPECT_EQ(replayer.Replay(loaded), result.violation);
}

TEST(ExplorerReplayFileTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/explorer_replay_bad.txt";
  {
    std::string scenario_name;
    Explorer::ChoiceTrace trace;
    EXPECT_FALSE(Explorer::LoadTrace(path + ".missing", &scenario_name, &trace));
  }
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("# not a replay\njust some text\n", f);
  fclose(f);
  std::string scenario_name;
  Explorer::ChoiceTrace trace;
  EXPECT_FALSE(Explorer::LoadTrace(path, &scenario_name, &trace));
  std::remove(path.c_str());
}

TEST(ExplorerPruningTest, SleepSetsPruneWithoutMissingTheBug) {
  const char* kScenario = "fastpath_stale_pick";
  Explorer::Options with = BoundedDfs();
  Explorer::Options without = BoundedDfs();
  without.sleep_sets = false;

  Explorer pruned(MakeExplorerScenario(kScenario, /*mutate=*/true), with);
  Explorer::Result pruned_result = pruned.Explore();
  Explorer full(MakeExplorerScenario(kScenario, /*mutate=*/true), without);
  Explorer::Result full_result = full.Explore();
  EXPECT_TRUE(pruned_result.violation_found);
  EXPECT_TRUE(full_result.violation_found);
  // Both searches converge on the same logical violation.
  EXPECT_EQ(pruned_result.violation, full_result.violation);
}

TEST(ExplorerBudgetTest, UnknownScenarioIsNull) {
  EXPECT_EQ(MakeExplorerScenario("no_such_scenario", false), nullptr);
}

}  // namespace
}  // namespace gs
