// Scenario library tests: strict parsing (exit 2 naming the bad key),
// parse -> ToJson -> parse round-trip identity, registry completeness, and
// golden determinism (byte-stable across repeated runs and across --jobs).
#include "src/scenario/scenario.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario_runner.h"
#include "src/sim/batch_runner.h"

namespace gs {
namespace scenario {
namespace {

constexpr char kMinimal[] = R"json({
  "name": "minimal",
  "warmup_ms": 2, "measure_ms": 8, "drain_ms": 2,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 1, "cores_per_ccx": 2},
  "policy": {"kind": "per_cpu_fifo"},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 4,
    "service": {"model": "fixed", "fixed_us": 20},
    "phases": [{"duration_ms": 10, "qps": 2000}]
  }
})json";

// ---- Strict parsing --------------------------------------------------------

TEST(ScenarioParseTest, MinimalParses) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "minimal");
  EXPECT_EQ(spec->policy.kind, "per_cpu_fifo");
  ASSERT_EQ(spec->workload.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->workload.phases[0].qps, 2000);
}

TEST(ScenarioParseTest, UnknownTopLevelKeyIsNamed) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::Parse(R"({"name": "x", "wormload": {}})", &error).has_value());
  EXPECT_NE(error.find("unknown key \"wormload\""), std::string::npos) << error;
}

TEST(ScenarioParseTest, UnknownNestedKeyIsNamedWithPath) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(
                   R"({"name": "x", "policy": {"kind": "shinjuku", "timeslce_us": 30}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("unknown key \"policy.timeslce_us\""), std::string::npos)
      << error;
}

TEST(ScenarioParseTest, MissingRequiredKeyIsNamed) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(R"({"description": "no name"})", &error).has_value());
  EXPECT_NE(error.find("missing required key \"name\""), std::string::npos) << error;
}

TEST(ScenarioParseTest, WrongTypeIsNamed) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(R"({"name": "x", "seed": "forty-two"})", &error)
                   .has_value());
  EXPECT_NE(error.find("\"seed\" must be a number"), std::string::npos) << error;
}

TEST(ScenarioParseTest, BadEnumValueIsNamed) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::Parse(R"({"name": "x", "policy": {"kind": "lottery"}})", &error)
          .has_value());
  EXPECT_NE(error.find("policy.kind"), std::string::npos) << error;
  EXPECT_NE(error.find("lottery"), std::string::npos) << error;
}

TEST(ScenarioParseTest, PresetRejectsCustomDimensions) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(
                   R"({"name": "x", "topology": {"preset": "e5_24", "sockets": 2}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("topology.sockets"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FaultPlanRequiresKind) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(
                   R"({"name": "x", "faults": {"plan": [{"at_ms": 5}]}})", &error)
                   .has_value());
  EXPECT_NE(error.find("missing required key \"faults.plan[0].kind\""),
            std::string::npos)
      << error;
}

// ---- Fleet block -----------------------------------------------------------

// kMinimal plus a fleet block; the helper splices the fleet JSON in.
std::string WithFleet(const std::string& fleet_json) {
  std::string spec(kMinimal);
  const size_t close = spec.rfind('}');
  return spec.substr(0, close) + ", \"fleet\": " + fleet_json + "}";
}

TEST(ScenarioParseTest, FleetBlockParses) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(
      WithFleet(R"({"machines": 8, "sessions": 128, "rpc_fanout": 2,
                    "balancer": {"policy": "consistent_hash", "virtual_nodes": 32},
                    "network": {"latency_us": 20, "bandwidth_gbps": 40,
                                "links": [{"from": -1, "to": 0, "latency_us": 5}]},
                    "overrides": [{"machine": 3, "policy": {"kind": "per_cpu_fifo"}}],
                    "plan": [{"at_ms": 5, "kind": "lb_drain", "machine": 3}]})"),
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_TRUE(spec->fleet.has_value());
  EXPECT_EQ(spec->fleet->machines, 8);
  EXPECT_EQ(spec->fleet->rpc_fanout, 2);
  EXPECT_EQ(spec->fleet->balancer.policy, "consistent_hash");
  EXPECT_EQ(spec->fleet->balancer.virtual_nodes, 32);
  ASSERT_EQ(spec->fleet->network.links.size(), 1u);
  EXPECT_EQ(spec->fleet->network.links[0].from, -1);
  ASSERT_EQ(spec->fleet->overrides.size(), 1u);
  ASSERT_TRUE(spec->fleet->overrides[0].policy.has_value());
  EXPECT_EQ(spec->fleet->overrides[0].policy->kind, "per_cpu_fifo");
  ASSERT_EQ(spec->fleet->plan.size(), 1u);
  EXPECT_EQ(spec->fleet->plan[0].kind, "lb_drain");
}

std::string WithAbTest(const std::string& ab_json) {
  std::string spec(kMinimal);
  spec.replace(spec.find("per_cpu_fifo"), sizeof("per_cpu_fifo") - 1, "ab_test");
  const size_t close = spec.rfind('}');
  return spec.substr(0, close) + ", \"ab_test\": " + ab_json + "}";
}

std::string WithFuzz(const std::string& fuzz_json) {
  std::string spec(kMinimal);
  const size_t close = spec.rfind('}');
  return spec.substr(0, close) + ", \"fuzz\": " + fuzz_json + "}";
}

TEST(ScenarioParseTest, AbTestBlockParses) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(
      WithAbTest(R"({"canary": {"percent": 25, "lifo": true},
                     "promote_at_ms": 4, "rollback_at_ms": 6})"),
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_TRUE(spec->ab_test.has_value());
  EXPECT_EQ(spec->ab_test->canary.percent, 25);
  EXPECT_TRUE(spec->ab_test->canary.lifo);
  EXPECT_DOUBLE_EQ(spec->ab_test->promote_at_ms, 4);
  EXPECT_DOUBLE_EQ(spec->ab_test->rollback_at_ms, 6);
}

TEST(ScenarioParseTest, AbTestRequiresTheAbTestPolicyKind) {
  std::string error;
  std::string spec(kMinimal);  // policy.kind stays per_cpu_fifo
  const size_t close = spec.rfind('}');
  spec = spec.substr(0, close) + ", \"ab_test\": {\"canary\": {\"percent\": 5}}}";
  EXPECT_FALSE(ScenarioSpec::Parse(spec, &error).has_value());
  EXPECT_NE(error.find("ab_test"), std::string::npos) << error;
  EXPECT_NE(error.find("policy.kind"), std::string::npos) << error;
}

TEST(ScenarioParseTest, AbTestCanaryPercentMustBeInRange) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::Parse(WithAbTest(R"({"canary": {"percent": 101}})"), &error)
          .has_value());
  EXPECT_NE(error.find("percent"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FuzzBlockParses) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(
      WithFuzz(R"({"cases": 40, "base_seed": 9, "schedules_per_case": 3})"), &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_TRUE(spec->fuzz.has_value());
  EXPECT_EQ(spec->fuzz->cases, 40);
  EXPECT_EQ(spec->fuzz->base_seed, 9u);
  EXPECT_EQ(spec->fuzz->schedules_per_case, 3);
}

TEST(ScenarioParseTest, FuzzCannotCombineWithAbTest) {
  std::string error;
  std::string spec = WithAbTest(R"({"canary": {"percent": 5}})");
  const size_t close = spec.rfind('}');
  spec = spec.substr(0, close) + ", \"fuzz\": {\"cases\": 5}}";
  EXPECT_FALSE(ScenarioSpec::Parse(spec, &error).has_value());
  EXPECT_NE(error.find("fuzz"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FleetUnknownKeyIsNamedWithPath) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(WithFleet(R"({"machines": 2, "ballancer": {}})"),
                                   &error)
                   .has_value());
  EXPECT_NE(error.find("unknown key \"fleet.ballancer\""), std::string::npos) << error;
}

TEST(ScenarioParseTest, FleetOverrideUnknownKeyHasFullPath) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::Parse(
          WithFleet(
              R"({"machines": 2,
                  "overrides": [{"machine": 1, "policy": {"kimd": "shinjuku"}}]})"),
          &error)
          .has_value());
  EXPECT_NE(error.find("unknown key \"fleet.overrides[0].policy.kimd\""),
            std::string::npos)
      << error;
}

TEST(ScenarioParseTest, FleetMachineCountIsBounded) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::Parse(WithFleet(R"({"machines": 65})"), &error).has_value());
  EXPECT_NE(error.find("fleet.machines"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FleetFanoutCannotExceedMachines) {
  std::string error;
  EXPECT_FALSE(
      ScenarioSpec::Parse(WithFleet(R"({"machines": 4, "rpc_fanout": 5})"), &error)
          .has_value());
  EXPECT_NE(error.find("fleet.rpc_fanout"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FleetLinkNodeIndexIsRangeChecked) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(
                   WithFleet(R"({"machines": 4,
                                 "network": {"links": [{"from": 0, "to": 4}]}})"),
                   &error)
                   .has_value());
  EXPECT_NE(error.find("fleet.network.links[0].to"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FleetPlanKindIsValidated) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(
                   WithFleet(R"({"machines": 2,
                                 "plan": [{"at_ms": 1, "kind": "reboot", "machine": 0}]})"),
                   &error)
                   .has_value());
  EXPECT_NE(error.find("fleet.plan[0].kind"), std::string::npos) << error;
  EXPECT_NE(error.find("reboot"), std::string::npos) << error;
}

TEST(ScenarioParseTest, FleetRejectsVmWorkload) {
  // A vm workload cannot shard across a fleet front end.
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse(
                   R"({"name": "x",
                       "workload": {"kind": "vm", "num_vms": 2},
                       "fleet": {"machines": 2}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("request_service"), std::string::npos) << error;
}

TEST(ScenarioParseTest, SyntaxErrorReportsLineAndColumn) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::Parse("{\n  \"name\": \"x\",,\n}", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// ---- Exit-2 contract (the code path the binaries use) ----------------------

TEST(ScenarioDeathTest, ParseOrExitNamesUnknownKeyAndExits2) {
  EXPECT_EXIT(ScenarioSpec::ParseOrExit(R"({"name": "x", "polcy": {}})"),
              ::testing::ExitedWithCode(2), "unknown key \"polcy\"");
}

TEST(ScenarioDeathTest, ParseOrExitNamesMissingKeyAndExits2) {
  EXPECT_EXIT(ScenarioSpec::ParseOrExit(R"({"seed": 1})"),
              ::testing::ExitedWithCode(2), "missing required key \"name\"");
}

TEST(ScenarioDeathTest, FleetTypoNamesExactPathAndExits2) {
  EXPECT_EXIT(
      ScenarioSpec::ParseOrExit(WithFleet(R"({"machines": 2, "ballancer": {}})")),
      ::testing::ExitedWithCode(2), "unknown key \"fleet.ballancer\"");
}

TEST(ScenarioDeathTest, AbTestCanaryTypoNamesExactPathAndExits2) {
  EXPECT_EXIT(
      ScenarioSpec::ParseOrExit(WithAbTest(R"({"canary": {"percent": 10, "polcy": 1}})")),
      ::testing::ExitedWithCode(2), "unknown key \"ab_test.canary.polcy\"");
}

TEST(ScenarioDeathTest, AbTestTypoNamesExactPathAndExits2) {
  EXPECT_EXIT(ScenarioSpec::ParseOrExit(WithAbTest(R"({"promot_at_ms": 4})")),
              ::testing::ExitedWithCode(2), "unknown key \"ab_test.promot_at_ms\"");
}

TEST(ScenarioDeathTest, FuzzTypoNamesExactPathAndExits2) {
  EXPECT_EXIT(ScenarioSpec::ParseOrExit(WithFuzz(R"({"cses": 10})")),
              ::testing::ExitedWithCode(2), "unknown key \"fuzz.cses\"");
}

TEST(ScenarioDeathTest, LoadFileOrExitRejectsMissingFile) {
  EXPECT_EXIT(ScenarioSpec::LoadFileOrExit("/nonexistent/scenario.json"),
              ::testing::ExitedWithCode(2), "cannot open");
}

TEST(ScenarioDeathTest, LoadScenarioOrExitRejectsUnknownName) {
  EXPECT_EXIT(LoadScenarioOrExit("no_such_scenario"), ::testing::ExitedWithCode(2),
              "neither a built-in scenario nor a file");
}

// ---- Round-trip ------------------------------------------------------------

TEST(ScenarioRoundTripTest, ParseToJsonParseIsIdentity) {
  std::string error;
  std::optional<ScenarioSpec> first = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(first.has_value()) << error;
  const std::string rendered = first->ToJson();
  std::optional<ScenarioSpec> second = ScenarioSpec::Parse(rendered, &error);
  ASSERT_TRUE(second.has_value()) << "ToJson output failed to re-parse: " << error
                                  << "\n" << rendered;
  EXPECT_EQ(second->ToJson(), rendered);
}

TEST(ScenarioRoundTripTest, EveryBuiltinRoundTrips) {
  for (const std::string& name : BuiltinScenarioNames()) {
    const ScenarioSpec spec = GetBuiltinScenario(name);
    const std::string rendered = spec.ToJson();
    std::string error;
    std::optional<ScenarioSpec> reparsed = ScenarioSpec::Parse(rendered, &error);
    ASSERT_TRUE(reparsed.has_value()) << name << ": " << error;
    EXPECT_EQ(reparsed->ToJson(), rendered) << name;
  }
}

// ---- Registry --------------------------------------------------------------

TEST(ScenarioRegistryTest, ShipsAtLeastTenBuiltinsSorted) {
  const std::vector<std::string> names = BuiltinScenarioNames();
  EXPECT_GE(names.size(), 10u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    const ScenarioSpec spec = GetBuiltinScenario(name);  // CHECKs on parse error
    EXPECT_EQ(spec.name, name) << "registry key and spec name disagree";
  }
}

TEST(ScenarioRegistryTest, CoversTheAdvertisedSituations) {
  const std::vector<std::string> names = BuiltinScenarioNames();
  for (const char* required :
       {"cfs_antagonist_colocation", "diurnal_load_swing", "overload_recovery",
        "tail_at_scale_fanout", "priority_inversion_storm",
        "agent_crash_midspike_fallback_cfs", "vm_colocation"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing built-in: " << required;
  }
}

// ---- Golden determinism ----------------------------------------------------

TEST(ScenarioGoldenTest, RenderIsByteStableAcrossRuns) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const std::string first = RenderGolden(RunScenario(*spec));
  const std::string second = RenderGolden(RunScenario(*spec));
  EXPECT_EQ(first, second);
}

TEST(ScenarioGoldenTest, RenderIsByteStableAcrossJobs) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  // The same 4-scenario batch serially and on 3 workers: slot-indexed
  // results must render to identical bytes.
  auto run_batch = [&spec](int jobs) {
    const BatchRunner runner(jobs);
    return runner.Map<std::string>(
        4, [&spec](int k) {
          ScenarioSpec copy = *spec;
          copy.seed = 42 + static_cast<uint64_t>(k);
          return RenderGolden(RunScenario(copy));
        });
  };
  EXPECT_EQ(run_batch(1), run_batch(3));
}

TEST(ScenarioGoldenTest, FreshRunMatchesItsOwnGolden) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const ScenarioResult result = RunScenario(*spec);
  std::vector<std::string> problems;
  EXPECT_TRUE(CheckGolden(result, RenderGolden(result), &problems))
      << (problems.empty() ? "" : problems[0]);
}

TEST(ScenarioGoldenTest, ExactDriftFailsTheCheck) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ScenarioResult result = RunScenario(*spec);
  const std::string golden = RenderGolden(result);
  result.exact["completed"] += 1;
  std::vector<std::string> problems;
  EXPECT_FALSE(CheckGolden(result, golden, &problems));
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("exact.completed"), std::string::npos) << problems[0];
}

TEST(ScenarioGoldenTest, EnvelopeEscapeFailsTheCheck) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ScenarioResult result = RunScenario(*spec);
  const std::string golden = RenderGolden(result);
  result.envelopes["p99_us"] = result.envelopes["p99_us"] * 10 + 1e6;
  std::vector<std::string> problems;
  EXPECT_FALSE(CheckGolden(result, golden, &problems));
  bool found = false;
  for (const std::string& p : problems) {
    found = found || p.find("envelopes.p99_us") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioGoldenTest, SchemaDriftIsDetectedBothWays) {
  std::string error;
  std::optional<ScenarioSpec> spec = ScenarioSpec::Parse(kMinimal, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ScenarioResult result = RunScenario(*spec);
  const std::string golden = RenderGolden(result);

  ScenarioResult extra = result;
  extra.exact["brand_new_metric"] = 7;
  std::vector<std::string> problems;
  EXPECT_FALSE(CheckGolden(extra, golden, &problems));

  ScenarioResult fewer = result;
  fewer.exact.erase("completed");
  problems.clear();
  EXPECT_FALSE(CheckGolden(fewer, golden, &problems));
}

}  // namespace
}  // namespace scenario
}  // namespace gs
