// Focused CFS tests: weight-proportional sharing across the nice range,
// LLC-scoped wake placement, balancing, and virtual-clock stability.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

// --- Weight table ---------------------------------------------------------------

TEST(CfsWeightTest, MatchesKernelTable) {
  EXPECT_EQ(CfsClass::NiceToWeight(0), 1024);
  EXPECT_EQ(CfsClass::NiceToWeight(-20), 88761);
  EXPECT_EQ(CfsClass::NiceToWeight(19), 15);
  // Each nice level is ~1.25x the next.
  for (int nice = -20; nice < 19; ++nice) {
    const double ratio = static_cast<double>(CfsClass::NiceToWeight(nice)) /
                         static_cast<double>(CfsClass::NiceToWeight(nice + 1));
    EXPECT_GT(ratio, 1.15) << "nice " << nice;
    EXPECT_LT(ratio, 1.35) << "nice " << nice;
  }
}

// --- Proportional sharing: parameterized over nice deltas -------------------------

class CfsNiceShareTest : public ::testing::TestWithParam<int> {};

TEST_P(CfsNiceShareTest, ShareFollowsWeightRatio) {
  const int nice_delta = GetParam();
  Machine m(Topology::Make("t", 1, 1, 1, 1));
  Task* a = m.kernel().CreateTask("a");
  Task* b = m.kernel().CreateTask("b");
  m.kernel().SetNice(b, nice_delta);
  for (Task* t : {a, b}) {
    auto loop = std::make_shared<std::function<void(Task*)>>();
    *loop = [&m, loop](Task* task) { m.kernel().StartBurst(task, Milliseconds(5), *loop); };
    m.kernel().StartBurst(t, Milliseconds(5), *loop);
    m.kernel().Wake(t);
  }
  m.RunFor(Seconds(2));
  const double expected = static_cast<double>(CfsClass::NiceToWeight(0)) /
                          static_cast<double>(CfsClass::NiceToWeight(nice_delta));
  const double measured =
      static_cast<double>(a->total_runtime()) / static_cast<double>(b->total_runtime());
  EXPECT_GT(measured, expected * 0.6) << "nice delta " << nice_delta;
  EXPECT_LT(measured, expected * 1.7) << "nice delta " << nice_delta;
}

INSTANTIATE_TEST_SUITE_P(NiceDeltas, CfsNiceShareTest, ::testing::Values(1, 3, 5, 10, 15, 19));

// --- N-way fairness sweep ----------------------------------------------------------

class CfsFairnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CfsFairnessTest, EqualHogsGetEqualTime) {
  const int num_hogs = GetParam();
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  std::vector<Task*> hogs;
  for (int i = 0; i < num_hogs; ++i) {
    hogs.push_back(SpawnHog(m.kernel(), "h" + std::to_string(i), nullptr, Milliseconds(2)));
  }
  m.RunFor(Milliseconds(500));
  Duration min_rt = INT64_MAX, max_rt = 0;
  for (Task* hog : hogs) {
    min_rt = std::min(min_rt, hog->total_runtime());
    max_rt = std::max(max_rt, hog->total_runtime());
  }
  // With hogs divisible across CPUs CFS is near-perfectly fair; otherwise a
  // lone hog on one CPU legitimately gets up to 2x (real CFS behaves the
  // same: load balancing equalizes queue lengths, not attained time).
  const double bound = (num_hogs % 2 == 0) ? 1.35 : 2.3;
  EXPECT_LT(static_cast<double>(max_rt) / static_cast<double>(min_rt), bound)
      << num_hogs << " hogs";
}

INSTANTIATE_TEST_SUITE_P(HogCounts, CfsFairnessTest, ::testing::Values(2, 3, 4, 7, 12));

// --- Wake placement is LLC-scoped ----------------------------------------------------

TEST(CfsPlacementTest, WakePrefersPrevCpu) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  Task* t = m.kernel().CreateTask("t");
  m.kernel().StartBurst(t, Microseconds(100), [&](Task* task) { m.kernel().Block(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(1));
  const int first_cpu = t->last_cpu();
  m.kernel().StartBurst(t, Microseconds(100), [&](Task* task) { m.kernel().Block(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(t->last_cpu(), first_cpu) << "idle prev CPU must be reused";
}

TEST(CfsPlacementTest, WakeStaysInLlcWhenCcxHasIdle) {
  // Rome-style: 2 CCXs of 2 cores each. A task that last ran on CCX 0 with a
  // busy prev CPU moves within CCX 0, not to the idle CCX 1.
  Machine m(Topology::Make("t", 1, 4, 1, 2));
  Task* t = m.kernel().CreateTask("t");
  m.kernel().StartBurst(t, Microseconds(100), [&](Task* task) { m.kernel().Block(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(1));
  const int prev = t->last_cpu();
  ASSERT_GE(prev, 0);
  // Occupy prev with a pinned hog.
  Task* hog = SpawnHog(m.kernel(), "hog");
  m.kernel().SetAffinity(hog, CpuMask::Single(prev));
  m.RunFor(Milliseconds(2));
  m.kernel().StartBurst(t, Microseconds(100), [&](Task* task) { m.kernel().Block(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(m.kernel().topology().cpu(t->last_cpu()).ccx,
            m.kernel().topology().cpu(prev).ccx);
  EXPECT_NE(t->last_cpu(), prev);
}

TEST(CfsPlacementTest, QueuesInLlcRatherThanCrossingIt) {
  // Both CPUs of CCX 0 are busy; CCX 1 idle. A waking task that last ran on
  // CCX 0 queues behind a CCX-0 CPU (select_idle_sibling does not scan other
  // LLCs); ms-scale balancing may move it later.
  Machine m(Topology::Make("t", 1, 4, 1, 2));
  Task* t = m.kernel().CreateTask("t");
  m.kernel().StartBurst(t, Microseconds(100), [&](Task* task) { m.kernel().Block(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(1));
  const int ccx0 = m.kernel().topology().cpu(t->last_cpu()).ccx;
  const CpuMask ccx0_cpus = m.kernel().topology().CcxMask(ccx0);
  for (int cpu = ccx0_cpus.First(); cpu >= 0; cpu = ccx0_cpus.NextAfter(cpu)) {
    Task* hog = SpawnHog(m.kernel(), "hog" + std::to_string(cpu));
    m.kernel().SetAffinity(hog, CpuMask::Single(cpu));
  }
  m.RunFor(Milliseconds(5));
  m.kernel().StartBurst(t, Microseconds(100), [&](Task* task) { m.kernel().Block(task); });
  m.kernel().Wake(t);
  // Immediately after the wake (before any balancing), the task must be
  // queued on a CCX-0 runqueue.
  int queued_on = -1;
  for (int cpu = 0; cpu < 4; ++cpu) {
    if (m.cfs_class()->QueueDepth(cpu) > 0) {
      queued_on = cpu;
    }
  }
  ASSERT_GE(queued_on, 0);
  EXPECT_EQ(m.kernel().topology().cpu(queued_on).ccx, ccx0);
}

// --- Active balance --------------------------------------------------------------

TEST(CfsBalanceTest, ActiveBalanceRelievesDualBusyCore) {
  // SMT machine, 2 cores / 4 CPUs: two hogs pinned-then-released on one core
  // while the other core idles. Active balance must migrate one within a few
  // balance intervals.
  Machine m(Topology::Make("t", 1, 2, 2, 2));
  Task* a = SpawnHog(m.kernel(), "a", nullptr, Milliseconds(1));
  Task* b = SpawnHog(m.kernel(), "b", nullptr, Milliseconds(1));
  const CpuMask core0 = m.kernel().topology().CoreMask(0);
  m.kernel().SetAffinity(a, core0);
  m.kernel().SetAffinity(b, core0);
  m.RunFor(Milliseconds(5));
  ASSERT_EQ(m.kernel().topology().cpu(a->cpu()).core, 0);
  ASSERT_EQ(m.kernel().topology().cpu(b->cpu()).core, 0);
  // Release the pins: active balance should split them across cores.
  m.kernel().SetAffinity(a, CpuMask::AllUpTo(4));
  m.kernel().SetAffinity(b, CpuMask::AllUpTo(4));
  m.RunFor(Milliseconds(50));
  EXPECT_NE(m.kernel().topology().cpu(a->cpu()).core,
            m.kernel().topology().cpu(b->cpu()).core)
      << "hogs should spread to separate physical cores";
}

// --- Virtual clock stability -----------------------------------------------------------

TEST(CfsClockTest, VruntimeStaysBoundedUnderChurn) {
  // The regression behind Fig 6c: mixed extreme nice values with heavy
  // blocking/waking churn and migrations must not blow up vruntime.
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  Task* batch = SpawnHog(m.kernel(), "batch", nullptr, Microseconds(500));
  m.kernel().SetNice(batch, 19);
  std::vector<Task*> workers;
  for (int i = 0; i < 8; ++i) {
    Task* w = m.kernel().CreateTask("w" + std::to_string(i));
    m.kernel().SetNice(w, -20);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    *loop = [&m, loop](Task* task) {
      m.kernel().Block(task);
      m.loop().ScheduleAfter(Microseconds(20), [&m, task, loop] {
        m.kernel().StartBurst(task, Microseconds(30), *loop);
        m.kernel().Wake(task);
      });
    };
    m.kernel().StartBurst(w, Microseconds(30), *loop);
    m.kernel().Wake(w);
    workers.push_back(w);
  }
  m.RunFor(Seconds(1));
  for (Task* w : workers) {
    EXPECT_LT(w->cfs().vruntime, Seconds(3600)) << w->name() << " vruntime exploded";
    EXPECT_GT(w->total_runtime(), Milliseconds(10)) << w->name() << " starved";
  }
  // The nice-19 hog must get almost nothing while nice -20 workers are active.
  EXPECT_LT(batch->total_runtime(), Seconds(4));
}

TEST(CfsClockTest, SleeperCreditBoundsWakeupLatency) {
  // A task that slept a long time must preempt a long-running hog promptly
  // (sleeper credit), not wait out the hog's accumulated lead.
  Machine m(Topology::Make("t", 1, 1, 1, 1));
  SpawnHog(m.kernel(), "hog", nullptr, Milliseconds(1));
  m.RunFor(Seconds(1));
  Task* sleeper = m.kernel().CreateTask("sleeper");
  Time done = -1;
  m.kernel().StartBurst(sleeper, Microseconds(100), [&](Task* t) {
    done = m.now();
    m.kernel().Exit(t);
  });
  const Time woke = m.now();
  m.kernel().Wake(sleeper);
  m.RunFor(Milliseconds(50));
  ASSERT_GE(done, 0);
  EXPECT_LT(done - woke, Milliseconds(2));
}

}  // namespace
}  // namespace gs
