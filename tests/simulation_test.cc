// SimulationContext ownership tests: whole-machine runs as owned values,
// byte-determinism of concurrent contexts, per-context registry isolation,
// and BatchRunner's deterministic fan-out. The battery doubles as
// the TSan target for the ownership redesign: two contexts on two threads
// share nothing, so a data-race report here means a global leaked back in.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/policies/per_cpu_fifo.h"
#include "src/sim/batch_runner.h"
#include "src/sim/simulation.h"
#include "src/verify/invariants.h"

namespace gs {
namespace {

// One complete simulated-machine run: per-CPU FIFO agent over 2 CPUs, four
// block/wake workers, invariants checked throughout. Returns a digest that
// captures the whole observable outcome — enclave counters, per-task
// runtimes, and the full stats-registry JSON — so two digests are equal iff
// the runs were byte-identical.
std::string RunWorkload(uint64_t seed) {
  SimulationContext::Options options;
  options.topology = Topology::Make("simtest", 1, 2, 1, 2);
  options.seed = seed;
  options.enable_stats = true;
  SimulationContext sim(std::move(options));

  auto enclave = sim.CreateEnclave(CpuMask::AllUpTo(2));
  auto process =
      sim.CreateAgentProcess(enclave.get(), std::make_unique<PerCpuFifoPolicy>());
  process->Start();
  InvariantChecker checker(&sim.kernel());
  checker.Watch(enclave.get());
  checker.Start();

  constexpr Duration kBurst = Microseconds(200);
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    Task* task = sim.kernel().CreateTask("w" + std::to_string(i));
    enclave->AddTask(task);
    auto remaining = std::make_shared<int>(10 + static_cast<int>(seed % 5));
    auto loop = std::make_shared<std::function<void(Task*)>>();
    Kernel* kernel = &sim.kernel();
    EventLoop* loop_ptr = &sim.loop();
    *loop = [kernel, loop_ptr, remaining, loop](Task* t) {
      if (--*remaining <= 0) {
        kernel->Exit(t);
        return;
      }
      kernel->Block(t);
      loop_ptr->ScheduleAfter(Microseconds(50), [kernel, t, loop] {
        kernel->StartBurst(t, kBurst, *loop);
        kernel->Wake(t);
      });
    };
    kernel->StartBurst(task, kBurst, *loop);
    kernel->Wake(task);
    tasks.push_back(task);
  }
  sim.RunFor(Milliseconds(50));

  std::string digest;
  digest += "committed=" + std::to_string(enclave->txns_committed());
  digest += " posted=" + std::to_string(enclave->messages_posted());
  digest += " checker=" + std::string(checker.ok() ? "ok" : "violated");
  for (Task* task : tasks) {
    digest += " " + task->name() + "=" +
              std::to_string(static_cast<long long>(task->total_runtime()));
  }
  digest += "\n" + sim.stats().ToJson();
  return digest;
}

// Two different-seed contexts running concurrently on two threads must each
// produce exactly the bytes their seed produces serially: contexts share
// nothing, so concurrency cannot perturb them.
TEST(SimulationContextTest, ConcurrentContextsMatchSerialByteForByte) {
  const std::string serial_a = RunWorkload(7);
  const std::string serial_b = RunWorkload(8);
  ASSERT_NE(serial_a, serial_b) << "seeds must differentiate the workload";

  std::string threaded_a, threaded_b;
  std::thread ta([&] { threaded_a = RunWorkload(7); });
  std::thread tb([&] { threaded_b = RunWorkload(8); });
  ta.join();
  tb.join();

  EXPECT_EQ(serial_a, threaded_a);
  EXPECT_EQ(serial_b, threaded_b);
}

// A context owns its registry: two back-to-back contexts never see each
// other's counters, and a borrowed registry accumulates across contexts.
TEST(SimulationContextTest, RegistriesArePerContext) {
  SimulationContext::Options options;
  options.enable_stats = true;
  int64_t first;
  {
    SimulationContext sim(options);
    sim.stats().GetCounter("widgets")->Inc(3);
    first = sim.stats().GetCounter("widgets")->value();
  }
  SimulationContext sim(options);
  EXPECT_EQ(first, 3);
  EXPECT_EQ(sim.stats().GetCounter("widgets")->value(), 0)
      << "a fresh context must start from a fresh registry";

  StatsRegistry shared;
  shared.Enable();
  for (int i = 0; i < 2; ++i) {
    SimulationContext::Options borrowed;
    borrowed.stats = &shared;
    SimulationContext inner(borrowed);
    inner.stats().GetCounter("widgets")->Inc(1);
  }
  EXPECT_EQ(shared.GetCounter("widgets")->value(), 2);
}

// Nested contexts on one thread are fully independent values: each owns its
// registry, and destroying the inner one leaves the outer untouched.
TEST(SimulationContextTest, NestedContextsStayIndependent) {
  SimulationContext outer(SimulationContext::Options{});
  StatsRegistry* outer_stats = &outer.stats();
  {
    SimulationContext inner(SimulationContext::Options{});
    EXPECT_NE(&inner.stats(), outer_stats);
  }
  EXPECT_EQ(&outer.stats(), outer_stats);
}

// ---- BatchRunner ----------------------------------------------------------

TEST(BatchRunnerTest, JobsClampAndInlineMode) {
  EXPECT_EQ(BatchRunner(-3).jobs(), 1);
  EXPECT_EQ(BatchRunner(1).jobs(), 1);
  EXPECT_EQ(BatchRunner(5).jobs(), 5);
  EXPECT_GE(BatchRunner(0).jobs(), 1);  // hardware concurrency

  // jobs=1 runs inline on the calling thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(3);
  BatchRunner(1).Run(3, [&](int i) { ran[i] = std::this_thread::get_id(); });
  for (const std::thread::id& id : ran) {
    EXPECT_EQ(id, caller);
  }
}

TEST(BatchRunnerTest, EveryIndexRunsExactlyOnce) {
  constexpr int kRuns = 100;
  std::vector<int> counts(kRuns, 0);
  BatchRunner(8).Run(kRuns, [&](int i) { ++counts[i]; });
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(counts[i], 1) << "index " << i;
  }
}

TEST(BatchRunnerTest, LowestIndexedExceptionWins) {
  try {
    BatchRunner(4).Run(16, [&](int i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

// The stress battery: many full machine runs across a pool, every outcome
// byte-compared against the same seed's inline run. This is the test TSan
// watches — any cross-context sharing shows up here as a race or a digest
// mismatch.
TEST(BatchRunnerTest, ParallelSimulationStressMatchesInline) {
  constexpr int kRuns = 12;
  std::vector<std::string> inline_digests(kRuns);
  BatchRunner(1).Run(kRuns,
                     [&](int i) { inline_digests[i] = RunWorkload(100 + i); });

  std::vector<std::string> parallel_digests(kRuns);
  BatchRunner(0).Run(kRuns,
                     [&](int i) { parallel_digests[i] = RunWorkload(100 + i); });

  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(inline_digests[i], parallel_digests[i]) << "run " << i;
  }
}

}  // namespace
}  // namespace gs
