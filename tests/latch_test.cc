// Edge-case tests for the transaction latch (the ghOSt class's only per-CPU
// state) and commit validation interleavings.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

class LatchTest : public ::testing::Test {
 protected:
  void Build(int cores) {
    machine_ = std::make_unique<Machine>(Topology::Make("t", 1, cores, 1, cores));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores));
  }

  Task* GhostTask_(const std::string& name, Duration burst) {
    Task* task = machine_->kernel().CreateTask(name);
    enclave_->AddTask(task);
    machine_->kernel().StartBurst(burst > 0 ? task : task, burst,
                                  [this](Task* t) { machine_->kernel().Exit(t); });
    return task;
  }

  TxnStatus CommitOne(int64_t tid, int cpu) {
    Transaction txn;
    txn.tid = tid;
    txn.target_cpu = cpu;
    Transaction* ptr = &txn;
    enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                         [](int) { return Duration{0}; });
    return txn.status;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
};

TEST_F(LatchTest, TaskCannotBeLatchedOnTwoCpus) {
  Build(3);
  Task* task = GhostTask_("w", Microseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  // While the first commit's IPI is in flight, a second commit for the same
  // thread elsewhere must fail.
  EXPECT_EQ(CommitOne(task->tid(), 2), TxnStatus::kENotRunnable);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->last_cpu(), 1);
}

TEST_F(LatchTest, LatchSurvivesWhilePickDisabled) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  EXPECT_TRUE(machine_->ghost_class()->HasLatch(1));
  // Before the IPI lands the latch is pending but not pickable; after, gone
  // (consumed by the pick).
  machine_->RunFor(Microseconds(10));
  EXPECT_FALSE(machine_->ghost_class()->HasLatch(1));
  EXPECT_EQ(task->state(), TaskState::kRunning);
}

TEST_F(LatchTest, RunningTaskCannotBeCommittedAgain) {
  Build(2);
  Task* task = GhostTask_("w", Milliseconds(5));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(task->state(), TaskState::kRunning);
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kENotRunnable);
}

TEST_F(LatchTest, DeadTaskDefeatsPendingLatch) {
  Build(3);
  Task* a = GhostTask_("a", Microseconds(5));
  Task* b = GhostTask_("b", Microseconds(5));
  machine_->kernel().Wake(a);
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));
  // Run `a` on cpu 1 to completion.
  ASSERT_EQ(CommitOne(a->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(a->state(), TaskState::kDead);
  // A commit for the dead thread is invalid; the CPU stays usable for b.
  EXPECT_EQ(CommitOne(a->tid(), 1), TxnStatus::kEInvalid);
  EXPECT_EQ(CommitOne(b->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(b->state(), TaskState::kDead);
}

TEST_F(LatchTest, EnclaveDestroyClearsLatches) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  ASSERT_TRUE(machine_->ghost_class()->HasLatch(1));
  enclave_->Destroy();
  EXPECT_FALSE(machine_->ghost_class()->HasLatch(1));
  // The thread finishes under CFS.
  machine_->RunFor(Milliseconds(2));
  EXPECT_EQ(task->state(), TaskState::kDead);
}

TEST_F(LatchTest, MixedGroupPartialFailureIsPerTxn) {
  // Without sync_group, failures are independent: one bad transaction in a
  // group doesn't poison the others (unlike synchronized groups).
  Build(4);
  Task* a = GhostTask_("a", Microseconds(5));
  Task* b = GhostTask_("b", Microseconds(5));  // never woken
  machine_->kernel().Wake(a);
  machine_->RunFor(Microseconds(1));
  Transaction ta;
  ta.tid = a->tid();
  ta.target_cpu = 1;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  std::vector<Transaction*> txns = {&ta, &tb};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kCommitted);
  EXPECT_EQ(tb.status, TxnStatus::kENotRunnable);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(a->state(), TaskState::kDead);
  EXPECT_EQ(b->state(), TaskState::kCreated);
}

TEST_F(LatchTest, SyncGroupRejectsDuplicateTargets) {
  // Malformed synchronized groups must fail cleanly, not crash: two members
  // naming the same CPU, or the same thread twice.
  Build(4);
  Task* a = GhostTask_("a", Microseconds(5));
  Task* b = GhostTask_("b", Microseconds(5));
  machine_->kernel().Wake(a);
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));

  Transaction t1;
  t1.tid = a->tid();
  t1.target_cpu = 1;
  t1.sync_group = 3;
  Transaction t2;
  t2.tid = b->tid();
  t2.target_cpu = 1;  // duplicate CPU
  t2.sync_group = 3;
  std::vector<Transaction*> txns = {&t1, &t2};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(t1.status, TxnStatus::kEAborted);
  EXPECT_EQ(t2.status, TxnStatus::kETxnPending);

  Transaction t3;
  t3.tid = a->tid();
  t3.target_cpu = 1;
  t3.sync_group = 4;
  Transaction t4;
  t4.tid = a->tid();  // duplicate thread
  t4.target_cpu = 2;
  t4.sync_group = 4;
  txns = {&t3, &t4};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(t3.status, TxnStatus::kEAborted);
  EXPECT_EQ(t4.status, TxnStatus::kENotRunnable);

  // A well-formed group on the same CPUs still commits afterwards.
  Transaction t5;
  t5.tid = a->tid();
  t5.target_cpu = 1;
  t5.sync_group = 5;
  Transaction t6;
  t6.tid = b->tid();
  t6.target_cpu = 2;
  t6.sync_group = 5;
  txns = {&t5, &t6};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(t5.status, TxnStatus::kCommitted);
  EXPECT_EQ(t6.status, TxnStatus::kCommitted);
}

}  // namespace
}  // namespace gs
