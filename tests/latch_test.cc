// Edge-case tests for the transaction latch (the ghOSt class's only per-CPU
// state) and commit validation interleavings.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/ghost/fastpath.h"
#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

class LatchTest : public ::testing::Test {
 protected:
  void Build(int cores) {
    machine_ = std::make_unique<Machine>(Topology::Make("t", 1, cores, 1, cores));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores));
  }

  Task* GhostTask_(const std::string& name, Duration burst) {
    Task* task = machine_->kernel().CreateTask(name);
    enclave_->AddTask(task);
    machine_->kernel().StartBurst(burst > 0 ? task : task, burst,
                                  [this](Task* t) { machine_->kernel().Exit(t); });
    return task;
  }

  TxnStatus CommitOne(int64_t tid, int cpu) {
    Transaction txn;
    txn.tid = tid;
    txn.target_cpu = cpu;
    Transaction* ptr = &txn;
    enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                         [](int) { return Duration{0}; });
    return txn.status;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
};

TEST_F(LatchTest, TaskCannotBeLatchedOnTwoCpus) {
  Build(3);
  Task* task = GhostTask_("w", Microseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  // While the first commit's IPI is in flight, a second commit for the same
  // thread elsewhere must fail.
  EXPECT_EQ(CommitOne(task->tid(), 2), TxnStatus::kENotRunnable);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->last_cpu(), 1);
}

TEST_F(LatchTest, LatchSurvivesWhilePickDisabled) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  EXPECT_TRUE(machine_->ghost_class()->HasLatch(1));
  // Before the IPI lands the latch is pending but not pickable; after, gone
  // (consumed by the pick).
  machine_->RunFor(Microseconds(10));
  EXPECT_FALSE(machine_->ghost_class()->HasLatch(1));
  EXPECT_EQ(task->state(), TaskState::kRunning);
}

TEST_F(LatchTest, RunningTaskCannotBeCommittedAgain) {
  Build(2);
  Task* task = GhostTask_("w", Milliseconds(5));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(task->state(), TaskState::kRunning);
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kENotRunnable);
}

TEST_F(LatchTest, DeadTaskDefeatsPendingLatch) {
  Build(3);
  Task* a = GhostTask_("a", Microseconds(5));
  Task* b = GhostTask_("b", Microseconds(5));
  machine_->kernel().Wake(a);
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));
  // Run `a` on cpu 1 to completion.
  ASSERT_EQ(CommitOne(a->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(a->state(), TaskState::kDead);
  // A commit for the dead thread is invalid; the CPU stays usable for b.
  EXPECT_EQ(CommitOne(a->tid(), 1), TxnStatus::kEInvalid);
  EXPECT_EQ(CommitOne(b->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(b->state(), TaskState::kDead);
}

TEST_F(LatchTest, EnclaveDestroyClearsLatches) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  ASSERT_TRUE(machine_->ghost_class()->HasLatch(1));
  enclave_->Destroy();
  EXPECT_FALSE(machine_->ghost_class()->HasLatch(1));
  // The thread finishes under CFS.
  machine_->RunFor(Milliseconds(2));
  EXPECT_EQ(task->state(), TaskState::kDead);
}

TEST_F(LatchTest, MixedGroupPartialFailureIsPerTxn) {
  // Without sync_group, failures are independent: one bad transaction in a
  // group doesn't poison the others (unlike synchronized groups).
  Build(4);
  Task* a = GhostTask_("a", Microseconds(5));
  Task* b = GhostTask_("b", Microseconds(5));  // never woken
  machine_->kernel().Wake(a);
  machine_->RunFor(Microseconds(1));
  Transaction ta;
  ta.tid = a->tid();
  ta.target_cpu = 1;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  std::vector<Transaction*> txns = {&ta, &tb};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kCommitted);
  EXPECT_EQ(tb.status, TxnStatus::kENotRunnable);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(a->state(), TaskState::kDead);
  EXPECT_EQ(b->state(), TaskState::kCreated);
}

TEST_F(LatchTest, SyncGroupRejectsDuplicateTargets) {
  // Malformed synchronized groups must fail cleanly, not crash: two members
  // naming the same CPU, or the same thread twice.
  Build(4);
  Task* a = GhostTask_("a", Microseconds(5));
  Task* b = GhostTask_("b", Microseconds(5));
  machine_->kernel().Wake(a);
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));

  Transaction t1;
  t1.tid = a->tid();
  t1.target_cpu = 1;
  t1.sync_group = 3;
  Transaction t2;
  t2.tid = b->tid();
  t2.target_cpu = 1;  // duplicate CPU
  t2.sync_group = 3;
  std::vector<Transaction*> txns = {&t1, &t2};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(t1.status, TxnStatus::kEAborted);
  EXPECT_EQ(t2.status, TxnStatus::kETxnPending);

  Transaction t3;
  t3.tid = a->tid();
  t3.target_cpu = 1;
  t3.sync_group = 4;
  Transaction t4;
  t4.tid = a->tid();  // duplicate thread
  t4.target_cpu = 2;
  t4.sync_group = 4;
  txns = {&t3, &t4};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(t3.status, TxnStatus::kEAborted);
  EXPECT_EQ(t4.status, TxnStatus::kENotRunnable);

  // A well-formed group on the same CPUs still commits afterwards.
  Transaction t5;
  t5.tid = a->tid();
  t5.target_cpu = 1;
  t5.sync_group = 5;
  Transaction t6;
  t6.tid = b->tid();
  t6.target_cpu = 2;
  t6.sync_group = 5;
  txns = {&t5, &t6};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(t5.status, TxnStatus::kCommitted);
  EXPECT_EQ(t6.status, TxnStatus::kCommitted);
}

TEST_F(LatchTest, SyncGroupFailingMemberRollsBackLatchedSiblings) {
  // Regression for the partial-latch bug: members latch as they validate, so
  // when a later member fails, the already-latched siblings must be rolled
  // back — kEAborted, latches cleared, target CPUs untouched — not left to
  // run half a synchronized group.
  Build(4);
  Task* a = GhostTask_("a", Microseconds(50));
  Task* b = GhostTask_("b", Microseconds(50));  // never woken -> kENotRunnable
  machine_->kernel().Wake(a);
  machine_->RunFor(Microseconds(1));

  Transaction ta;
  ta.tid = a->tid();
  ta.target_cpu = 1;
  ta.sync_group = 9;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  tb.sync_group = 9;
  std::vector<Transaction*> txns = {&ta, &tb};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kEAborted);
  EXPECT_EQ(tb.status, TxnStatus::kENotRunnable);
  // The rolled-back sibling left no trace: no latch, and `a` never runs.
  EXPECT_FALSE(machine_->ghost_class()->HasLatch(1));
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(a->state(), TaskState::kRunnable);
  EXPECT_EQ(a->total_runtime(), Duration{0});

  // The CPUs stay usable: a well-formed retry commits and runs.
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));
  ta.sync_group = 10;
  ta.status = TxnStatus::kPending;
  tb.sync_group = 10;
  tb.status = TxnStatus::kPending;
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kCommitted);
  EXPECT_EQ(tb.status, TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(a->state(), TaskState::kDead);
  EXPECT_EQ(b->state(), TaskState::kDead);
}

TEST_F(LatchTest, SyncGroupRollbackSparesIdleMarkerSibling) {
  // An idle-marker member takes no latch, so a group abort must not deliver
  // its forced-idle side effect either: the CPU stays schedulable.
  Build(4);
  Task* b = GhostTask_("b", Microseconds(50));  // never woken -> group fails

  Transaction tidle;
  tidle.tid = 0;
  tidle.idle = true;
  tidle.target_cpu = 1;
  tidle.sync_group = 11;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  tb.sync_group = 11;
  std::vector<Transaction*> txns = {&tidle, &tb};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(tidle.status, TxnStatus::kEAborted);
  EXPECT_EQ(tb.status, TxnStatus::kENotRunnable);
  EXPECT_FALSE(machine_->ghost_class()->forced_idle(1))
      << "aborted idle marker must not force the CPU idle";
}

TEST_F(LatchTest, SyncGroupRollbackRestoresForcedIdleMarker) {
  // Latching clears an existing forced-idle marker on the target CPU; a
  // rollback must put it back, or the abort silently un-idles a CPU that
  // core scheduling deliberately parked.
  Build(4);
  Task* a = GhostTask_("a", Microseconds(50));
  Task* b = GhostTask_("b", Microseconds(50));  // never woken
  machine_->kernel().Wake(a);
  machine_->RunFor(Microseconds(1));

  machine_->ghost_class()->SetForcedIdle(1, true);
  Transaction ta;
  ta.tid = a->tid();
  ta.target_cpu = 1;
  ta.sync_group = 12;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  tb.sync_group = 12;
  std::vector<Transaction*> txns = {&ta, &tb};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kEAborted);
  EXPECT_TRUE(machine_->ghost_class()->forced_idle(1))
      << "rollback must restore the forced-idle marker the latch displaced";
}

TEST_F(LatchTest, FastpathSkipsTidLatchedByRemoteCommit) {
  // Regression for the stale fast-path pick: an agent publishes a tid to the
  // idle ring, then commits the same thread to another CPU. When the idle
  // CPU later pops the stale entry, the pick must re-validate and skip it —
  // otherwise the thread is double-placed on two CPUs at once.
  Build(3);
  std::shared_ptr<RingFastPath> ring = RingFastPath::Global(3);
  RingFastPath* ring_ptr = ring.get();
  enclave_->InstallFastPath(std::move(ring));

  Task* task = GhostTask_("w", Microseconds(200));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_TRUE(ring_ptr->Publish(0, task->tid()));

  // Remote commit wins the race: the thread is latched on CPU 2.
  ASSERT_EQ(CommitOne(task->tid(), 2), TxnStatus::kCommitted);
  // Now CPU 1 goes looking for work and pops the stale published tid.
  machine_->kernel().ReschedCpu(1);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->last_cpu(), 2) << "stale fast-path entry must be skipped";
  EXPECT_EQ(task->total_runtime(), Microseconds(200));
}

TEST_F(LatchTest, FastpathSkipsTidMidSwitchOntoAnotherCpu) {
  // Same race, later window: the latch was already consumed by CPU 2's pick
  // and the thread is mid-context-switch (still kRunnable, inbound_cpu == 2).
  // The fast-path pick on CPU 1 must still skip it, and a remote commit in
  // that window must fail kENotRunnable.
  Build(3);
  std::shared_ptr<RingFastPath> ring = RingFastPath::Global(3);
  RingFastPath* ring_ptr = ring.get();
  enclave_->InstallFastPath(std::move(ring));

  Task* task = GhostTask_("w", Microseconds(200));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 2), TxnStatus::kCommitted);
  // Step until the latch is consumed but the switch hasn't finished: the
  // thread is still kRunnable with a context switch inbound on CPU 2.
  while (machine_->ghost_class()->HasLatch(2) ||
         task->state() != TaskState::kRunnable) {
    ASSERT_LT(machine_->now(), Milliseconds(1)) << "never reached mid-switch";
    machine_->RunFor(Nanoseconds(100));
    if (task->state() == TaskState::kRunning) {
      GTEST_SKIP() << "switch window too small to observe";
    }
  }
  ASSERT_EQ(task->inbound_cpu(), 2);
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kENotRunnable);
  ASSERT_TRUE(ring_ptr->Publish(0, task->tid()));
  machine_->kernel().ReschedCpu(1);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->last_cpu(), 2);
  EXPECT_EQ(task->total_runtime(), Microseconds(200));
}

}  // namespace
}  // namespace gs
