// Sequence-number semantics tests (§3.1-§3.3): Tseq/Aseq monotonicity,
// status-word consistency, and the exact staleness protocols of the per-CPU
// and centralized models.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

class SeqTest : public ::testing::Test {
 protected:
  void Build(int cores) {
    machine_ = std::make_unique<Machine>(Topology::Make("t", 1, cores, 1, cores));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores));
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
};

TEST_F(SeqTest, TseqIncrementsPerMessageAndMatchesStatusWord) {
  Build(2);
  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);  // msg 1: THREAD_CREATED
  const TaskStatusWord* status = enclave_->task_status(task->tid());
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->tseq, 1u);

  machine_->kernel().StartBurst(task, Microseconds(10),
                                [this](Task* t) { machine_->kernel().Block(t); });
  machine_->kernel().Wake(task);  // msg 2: WAKEUP
  EXPECT_EQ(status->tseq, 2u);
  machine_->RunFor(Milliseconds(1));
  // No agent scheduled it: still just 2 messages.
  EXPECT_EQ(status->tseq, 2u);

  // Every queued message carries the Tseq it was posted with, in order.
  uint32_t prev = 0;
  while (auto msg = enclave_->PopMessage(enclave_->default_queue())) {
    if (msg->tid == task->tid()) {
      EXPECT_EQ(msg->tseq, prev + 1);
      prev = msg->tseq;
    }
  }
  EXPECT_EQ(prev, 2u);
}

TEST_F(SeqTest, AseqCountsMessagesForConfiguredAgent) {
  Build(2);
  // Fake agent thread registered for CPU 1.
  Task* agent = machine_->kernel().CreateTask("agent", machine_->agent_class());
  enclave_->RegisterAgentTask(1, agent);
  enclave_->ConfigQueueWakeup(enclave_->default_queue(), agent);
  EXPECT_EQ(enclave_->agent_status(agent).aseq, 0u);

  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);  // +1
  machine_->kernel().StartBurst(task, Microseconds(10),
                                [this](Task* t) { machine_->kernel().Exit(t); });
  machine_->kernel().Wake(task);  // +1
  EXPECT_EQ(enclave_->agent_status(agent).aseq, 2u);
}

TEST_F(SeqTest, StaleAseqFailsCommit) {
  Build(2);
  Task* agent = machine_->kernel().CreateTask("agent", machine_->agent_class());
  enclave_->RegisterAgentTask(1, agent);
  enclave_->ConfigQueueWakeup(enclave_->default_queue(), agent);

  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);
  machine_->kernel().StartBurst(task, Microseconds(10),
                                [this](Task* t) { machine_->kernel().Exit(t); });
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  const uint32_t aseq = enclave_->agent_status(agent).aseq;

  // The §3.2 protocol: a transaction tagged with an older Aseq than the
  // current one must fail with ESTALE (a message arrived the agent has not
  // seen).
  Transaction stale;
  stale.tid = task->tid();
  stale.target_cpu = 0;
  stale.expected_aseq = aseq - 1;
  Transaction* ptr = &stale;
  enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), agent,
                       [](int) { return Duration{0}; });
  EXPECT_EQ(stale.status, TxnStatus::kEStale);

  Transaction fresh;
  fresh.tid = task->tid();
  fresh.target_cpu = 0;
  fresh.expected_aseq = aseq;
  ptr = &fresh;
  enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), agent,
                       [](int) { return Duration{0}; });
  EXPECT_EQ(fresh.status, TxnStatus::kCommitted);
}

TEST_F(SeqTest, TseqStalenessScenarioFromSection33) {
  // The paper's exact example: thread T posts WAKEUP; the agent decides to
  // run T on CPU f; meanwhile sched_setaffinity() posts THREAD_AFFINITY
  // forbidding CPU f. The commit tagged with the pre-affinity Tseq must fail.
  Build(3);
  Task* task = machine_->kernel().CreateTask("T");
  enclave_->AddTask(task);
  machine_->kernel().StartBurst(task, Microseconds(10),
                                [this](Task* t) { machine_->kernel().Exit(t); });
  machine_->kernel().Wake(task);
  const uint32_t tseq_at_decision = enclave_->task_status(task->tid())->tseq;

  // Concurrent affinity change (bumps Tseq, forbids CPU 2).
  machine_->kernel().SetAffinity(task, CpuMask::Single(1));

  Transaction txn;
  txn.tid = task->tid();
  txn.target_cpu = 2;
  txn.expected_tseq = tseq_at_decision;
  Transaction* ptr = &txn;
  enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                       [](int) { return Duration{0}; });
  EXPECT_EQ(txn.status, TxnStatus::kEStale)
      << "the agent's view was stale; the commit must not land";
  EXPECT_NE(task->last_cpu(), 2);
}

TEST_F(SeqTest, AgentWakeupOnQueueConfigOnly) {
  Build(2);
  Task* agent = machine_->kernel().CreateTask("agent", machine_->agent_class());
  enclave_->RegisterAgentTask(1, agent);
  // Agent blocked, queue NOT configured for wakeup: a message must not wake it.
  agent->set_state(TaskState::kBlocked);
  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(agent->state(), TaskState::kBlocked);

  // Now configure the wakeup and post another message.
  enclave_->ConfigQueueWakeup(enclave_->default_queue(), agent);
  machine_->kernel().StartBurst(task, Microseconds(10),
                                [this](Task* t) { machine_->kernel().Exit(t); });
  machine_->kernel().Wake(task);
  machine_->RunFor(Milliseconds(1));
  EXPECT_NE(agent->state(), TaskState::kBlocked) << "queue wakeup fired";
}

TEST_F(SeqTest, OverflowedMessageStillAdvancesAseq) {
  // Regression for the silent-overflow staleness hole: when the queue is full
  // the message is dropped, but the Aseq must advance anyway — the queue no
  // longer reflects the world, so an in-flight commit built on the pre-drop
  // view has to fail kEStale instead of acting on a stale task set.
  Build(2);
  Task* agent = machine_->kernel().CreateTask("agent", machine_->agent_class());
  enclave_->RegisterAgentTask(1, agent);
  MessageQueue* tiny = enclave_->CreateQueue(/*capacity=*/1);
  enclave_->ConfigQueueWakeup(tiny, agent);

  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);  // THREAD_CREATED -> default queue
  // Drain the creation message first: re-association requires an empty view.
  while (enclave_->PopMessage(enclave_->default_queue()).has_value()) {
  }
  ASSERT_TRUE(enclave_->AssociateQueue(task->tid(), tiny));
  machine_->kernel().StartBurst(task, Microseconds(10),
                                [this](Task* t) { machine_->kernel().Exit(t); });
  machine_->kernel().Wake(task);  // WAKEUP fills the 1-slot queue
  const uint32_t aseq_before_drop = enclave_->agent_status(agent).aseq;
  ASSERT_EQ(tiny->size(), 1u);

  // The agent reads its Aseq and builds a commit on the current view...
  Transaction txn;
  txn.tid = task->tid();
  txn.target_cpu = 0;
  txn.expected_aseq = aseq_before_drop;

  // ...meanwhile an affinity change posts a message that the full queue
  // drops. The drop must not be silent: Aseq advances and staleness state is
  // latched even though no message landed.
  machine_->kernel().SetAffinity(task, CpuMask::Single(1));
  EXPECT_EQ(tiny->size(), 1u) << "message should have been dropped";
  EXPECT_EQ(tiny->overflows(), 1u);
  EXPECT_TRUE(enclave_->overflow_pending());
  EXPECT_EQ(enclave_->agent_status(agent).aseq, aseq_before_drop + 1)
      << "dropped message must still advance the Aseq";

  Transaction* ptr = &txn;
  enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), agent,
                       [](int) { return Duration{0}; });
  EXPECT_EQ(txn.status, TxnStatus::kEStale)
      << "in-flight commit across an overflow must fail, not act on the "
         "pre-drop view (target CPU 0 is outside the new affinity)";
  EXPECT_NE(task->last_cpu(), 0);
}

}  // namespace
}  // namespace gs
