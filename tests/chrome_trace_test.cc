// Tests for the Chrome-trace exporter (src/sim/chrome_trace): the rendered
// document must be valid JSON in the Trace Event Format, with balanced B/E
// slices and monotonically non-decreasing timestamps on every track — the
// properties chrome://tracing and Perfetto require to load a file.
#include "src/sim/chrome_trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>

#include "src/base/json.h"
#include "src/sim/trace.h"

namespace gs {
namespace {

// Replays a small but representative scenario into the exporter: two CPUs
// running tasks, a message -> commit causality pair, and a fault.
ChromeTraceExporter RecordScenario() {
  ChromeTraceExporter exporter("test-machine");
  Trace trace;
  trace.AddSink(&exporter);

  trace.Record(1000, TraceEventType::kWakeup, 0, /*tid=*/10);
  trace.Record(2000, TraceEventType::kMessage, 0, /*tid=*/10, /*arg=*/1);
  trace.Record(2500, TraceEventType::kSwitchIn, 0, /*tid=*/10);
  trace.Record(3000, TraceEventType::kTxnCommit, 1, /*tid=*/10, /*arg=*/1);
  trace.Record(3500, TraceEventType::kSwitchIn, 1, /*tid=*/20);
  trace.Record(4000, TraceEventType::kFault, 0, /*tid=*/0, /*arg=*/2);
  trace.Record(5000, TraceEventType::kSwitchOut, 0, /*tid=*/10);
  trace.Record(6000, TraceEventType::kSwitchOut, 1, /*tid=*/20);
  trace.Record(6500, TraceEventType::kBlock, 1, /*tid=*/20);

  trace.RemoveSink(&exporter);
  return exporter;
}

TEST(ChromeTraceTest, ExportParsesAsJson) {
  ChromeTraceExporter exporter = RecordScenario();
  EXPECT_EQ(exporter.num_events(), 9u);

  std::optional<JsonValue> doc = JsonValue::Parse(exporter.ToJson());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), 0u);
  // Every entry must at least have a phase.
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_TRUE(ph->is_string());
  }
}

TEST(ChromeTraceTest, TimestampsMonotonicPerTrack) {
  ChromeTraceExporter exporter = RecordScenario();
  std::optional<JsonValue> doc = JsonValue::Parse(exporter.ToJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Track = (pid, tid). Metadata ("M") events carry no ts.
  std::map<std::pair<double, double>, double> last_ts;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      continue;
    }
    const JsonValue* ts = e.Find("ts");
    ASSERT_NE(ts, nullptr) << "non-metadata event without ts";
    const JsonValue* pid = e.Find("pid");
    const JsonValue* tid = e.Find("tid");
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    const auto key = std::make_pair(pid->number, tid->number);
    auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts->number, it->second)
          << "timestamps went backwards on track pid=" << pid->number
          << " tid=" << tid->number;
    }
    last_ts[key] = ts->number;
  }
  EXPECT_GT(last_ts.size(), 1u);  // at least two distinct tracks (2 CPUs)
}

TEST(ChromeTraceTest, SlicesBalancedPerPhase) {
  ChromeTraceExporter exporter = RecordScenario();
  std::optional<JsonValue> doc = JsonValue::Parse(exporter.ToJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::map<std::string, int> phases;
  for (const JsonValue& e : events->array) {
    phases[e.Find("ph")->string]++;
  }
  EXPECT_EQ(phases["B"], phases["E"]);  // duration slices balanced
  EXPECT_EQ(phases["b"], phases["e"]);  // async slices balanced
  EXPECT_GT(phases["B"], 0);
  EXPECT_GT(phases["b"], 0);            // the message->commit pair
  EXPECT_GT(phases["i"], 0);            // wakeup/block/fault instants
  EXPECT_GT(phases["M"], 0);            // process/thread name metadata
}

TEST(ChromeTraceTest, NamersResolveTaskAndArgNames) {
  ChromeTraceExporter exporter = RecordScenario();
  exporter.SetTaskNamer([](int64_t tid) { return "task/" + std::to_string(tid); });
  exporter.SetArgNamer([](TraceEventType, int64_t arg) {
    return "ARG_" + std::to_string(arg);
  });
  const std::string json = exporter.ToJson();
  EXPECT_NE(json.find("task/10"), std::string::npos);
  EXPECT_NE(json.find("ARG_"), std::string::npos);
  ASSERT_TRUE(JsonValue::Parse(json).has_value());
}

TEST(ChromeTraceTest, SinkSeesEventsTheRingEvicts) {
  ChromeTraceExporter exporter;
  Trace trace(/*capacity=*/4);
  trace.AddSink(&exporter);
  for (int i = 0; i < 100; ++i) {
    trace.Record(i * 1000, TraceEventType::kWakeup, 0, i);
  }
  EXPECT_EQ(trace.size(), 4u);              // ring kept only the tail
  EXPECT_EQ(exporter.num_events(), 100u);   // exporter saw everything
}

}  // namespace
}  // namespace gs
