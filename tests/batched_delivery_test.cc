// Regression tests for batched message delivery (producer-side wakeup
// coalescing).
//
// Messages posted to one queue within a single dispatch batch (same virtual
// instant) share one armed wakeup event instead of scheduling one each; the
// coalesced wakeups were provably no-ops (wake-if-blocked at the same
// instant, after the first wake the agent cannot have re-blocked). These
// tests pin down the three properties the optimization must preserve:
// per-queue FIFO order, exactly one wakeup per same-instant batch, and the
// overflow -> TaskDump resync path.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"

namespace gs {
namespace {

class BatchedDeliveryTest : public ::testing::Test {
 protected:
  void Build(int cores, Enclave::Config config = Enclave::Config()) {
    machine_ = std::make_unique<Machine>(Topology::Make("test", 1, cores, 1, cores));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores), config);
  }

  // A stand-in consumer parked in kBlocked, the state Post's wakeup targets.
  Task* BlockedAgent() {
    Kernel& kernel = machine_->kernel();
    Task* agent = kernel.CreateTask("agent");
    // Flagged as an agent so it may sit on a CPU with no pending burst after
    // the delivery wakeup (the kernel forbids that for ordinary tasks).
    agent->set_is_agent(true);
    kernel.StartBurst(agent, Nanoseconds(100),
                      [&kernel](Task* t) { kernel.Block(t); });
    kernel.Wake(agent);
    machine_->RunFor(Microseconds(5));
    EXPECT_EQ(agent->state(), TaskState::kBlocked);
    return agent;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
};

TEST_F(BatchedDeliveryTest, SameInstantBatchArmsExactlyOneWakeup) {
  Build(2);
  Task* agent = BlockedAgent();
  enclave_->ConfigQueueWakeup(enclave_->default_queue(), agent);

  const uint64_t scheduled_before = enclave_->queue_wakeups_scheduled();
  const uint64_t coalesced_before = enclave_->queue_wakeups_coalesced();

  // Three kTaskNew posts land on the default queue at the same instant.
  std::vector<Task*> workers;
  for (int i = 0; i < 3; ++i) {
    Task* t = machine_->kernel().CreateTask("w" + std::to_string(i));
    enclave_->AddTask(t);
    workers.push_back(t);
  }

  EXPECT_EQ(enclave_->queue_wakeups_scheduled() - scheduled_before, 1u)
      << "N same-instant posts must arm exactly one wakeup event";
  EXPECT_EQ(enclave_->queue_wakeups_coalesced() - coalesced_before, 2u)
      << "the other N-1 wakeups must ride the armed event";

  // The single armed event still wakes the consumer.
  machine_->RunFor(Microseconds(5));
  EXPECT_NE(agent->state(), TaskState::kBlocked)
      << "the coalesced batch must still deliver its wakeup";

  // Per-queue FIFO survives coalescing: messages pop in post order.
  std::vector<int64_t> tids;
  while (auto msg = enclave_->PopMessage(enclave_->default_queue())) {
    tids.push_back(msg->tid);
  }
  ASSERT_EQ(tids.size(), 3u);
  for (size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(tids[i], workers[i]->tid()) << "FIFO order broken at " << i;
  }
}

TEST_F(BatchedDeliveryTest, DistinctInstantsArmSeparateWakeups) {
  Build(2);
  Task* agent = BlockedAgent();
  enclave_->ConfigQueueWakeup(enclave_->default_queue(), agent);

  const uint64_t scheduled_before = enclave_->queue_wakeups_scheduled();
  const uint64_t coalesced_before = enclave_->queue_wakeups_coalesced();

  Task* first = machine_->kernel().CreateTask("w0");
  enclave_->AddTask(first);

  // Let the armed wakeup fire, then park the consumer again.
  machine_->RunFor(Microseconds(5));
  Kernel& kernel = machine_->kernel();
  kernel.StartBurst(agent, Nanoseconds(100),
                    [&kernel](Task* t) { kernel.Block(t); });
  machine_->RunFor(Microseconds(5));
  ASSERT_EQ(agent->state(), TaskState::kBlocked);

  // A later instant must arm a fresh event, not reuse the stale one.
  Task* second = machine_->kernel().CreateTask("w1");
  enclave_->AddTask(second);

  EXPECT_EQ(enclave_->queue_wakeups_scheduled() - scheduled_before, 2u)
      << "posts at different instants must each arm their own wakeup";
  EXPECT_EQ(enclave_->queue_wakeups_coalesced() - coalesced_before, 0u);

  machine_->RunFor(Microseconds(5));
  EXPECT_NE(agent->state(), TaskState::kBlocked);
}

TEST_F(BatchedDeliveryTest, OverflowDuringBatchStillForcesResync) {
  Enclave::Config config;
  config.default_queue_capacity = 2;
  Build(2, config);
  Task* agent = BlockedAgent();
  enclave_->ConfigQueueWakeup(enclave_->default_queue(), agent);

  const uint64_t scheduled_before = enclave_->queue_wakeups_scheduled();

  // Four same-instant posts into a 2-slot ring: two survive, two drop.
  std::vector<Task*> workers;
  for (int i = 0; i < 4; ++i) {
    Task* t = machine_->kernel().CreateTask("w" + std::to_string(i));
    enclave_->AddTask(t);
    workers.push_back(t);
  }

  EXPECT_TRUE(enclave_->overflow_pending())
      << "dropped messages must latch the resync flag";
  EXPECT_EQ(enclave_->queue_wakeups_scheduled() - scheduled_before, 1u)
      << "dropped messages coalesce onto the same armed wakeup";
  machine_->RunFor(Microseconds(5));
  EXPECT_NE(agent->state(), TaskState::kBlocked)
      << "the consumer must still be woken to notice the overflow";

  // The recovery protocol: flush queues, rebuild from the kernel dump. The
  // dump is authoritative — all four threads are present despite the drops.
  EXPECT_TRUE(enclave_->ConsumeOverflowPending());
  enclave_->FlushAllQueues();
  const std::vector<Enclave::TaskInfo> dump = enclave_->TaskDump();
  ASSERT_EQ(dump.size(), 4u);
  for (size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(dump[i].tid, workers[i]->tid()) << "dump order must be tid-sorted";
  }
  EXPECT_EQ(enclave_->PendingTaskMessages(), 0) << "flush must clear backlog";
}

}  // namespace
}  // namespace gs
