// Tests for the scheduling trace (tracepoint-style introspection).
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/per_cpu_fifo.h"
#include "tests/test_util.h"

namespace gs {
namespace {

TEST(TraceTest, DisabledByDefault) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  SpawnOneShot(m.kernel(), "t", Microseconds(10));
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(m.kernel().trace().size(), 0u);
}

TEST(TraceTest, RecordsTaskLifecycle) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  m.kernel().trace().Enable();
  Task* t = SpawnOneShot(m.kernel(), "t", Microseconds(10));
  m.RunFor(Milliseconds(1));

  const auto events = m.kernel().trace().ForTask(t->tid());
  ASSERT_GE(events.size(), 4u);
  // wakeup -> switch_in -> exit -> switch_out, in time order.
  EXPECT_EQ(events[0].type, TraceEventType::kWakeup);
  EXPECT_EQ(events[1].type, TraceEventType::kSwitchIn);
  EXPECT_EQ(events[2].type, TraceEventType::kExit);
  EXPECT_EQ(events[3].type, TraceEventType::kSwitchOut);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].when, events[i - 1].when);
  }
}

TEST(TraceTest, RecordsGhostMessagesAndCommits) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  m.kernel().trace().Enable();
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<PerCpuFifoPolicy>());
  process.Start();
  Task* t = m.kernel().CreateTask("w");
  enclave->AddTask(t);
  m.kernel().StartBurst(t, Microseconds(10), [&m](Task* task) { m.kernel().Exit(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(2));

  EXPECT_GE(m.kernel().trace().Filter(TraceEventType::kMessage).size(), 3u)
      << "created, wakeup, dead at minimum";
  EXPECT_GE(m.kernel().trace().Filter(TraceEventType::kTxnCommit).size(), 1u);
  EXPECT_GE(m.kernel().trace().Filter(TraceEventType::kAgentIter).size(), 1u);
  // The dump is human-readable and non-empty.
  const std::string dump = m.kernel().trace().Dump();
  EXPECT_NE(dump.find("txn_commit"), std::string::npos);
  EXPECT_NE(dump.find("switch_in"), std::string::npos);
}

TEST(TraceTest, BoundedCapacityDropsOldest) {
  Trace trace(/*capacity=*/8);
  trace.Enable();
  for (int i = 0; i < 20; ++i) {
    trace.Record(i, TraceEventType::kWakeup, 0, i);
  }
  EXPECT_EQ(trace.size(), 8u);
  EXPECT_EQ(trace.dropped(), 12u);
  EXPECT_EQ(trace.events().front().tid, 12);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceTest, FilterAndForTask) {
  Trace trace;
  trace.Enable();
  trace.Record(1, TraceEventType::kWakeup, 0, 7);
  trace.Record(2, TraceEventType::kSwitchIn, 0, 7);
  trace.Record(3, TraceEventType::kWakeup, 1, 8);
  EXPECT_EQ(trace.Filter(TraceEventType::kWakeup).size(), 2u);
  EXPECT_EQ(trace.ForTask(7).size(), 2u);
  EXPECT_EQ(trace.ForTask(9).size(), 0u);
}

}  // namespace
}  // namespace gs
