// Tests for in-kernel core scheduling (the §4.5 baseline) and the ghOSt
// secure-VM policy: the security invariant under stress, rotation fairness,
// and pair granularity.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/base/rng.h"
#include "src/ghost/machine.h"
#include "src/policies/vm_core_sched.h"
#include "src/workloads/vm_workload.h"
#include "tests/test_util.h"

namespace gs {
namespace {

// Helper: create a core-sched hog with a cookie (cookie must precede wake).
Task* CookieHog(Machine& m, const std::string& name, int64_t cookie,
                Duration chunk = Milliseconds(1)) {
  Task* t = m.kernel().CreateTask(name, m.core_sched_class());
  m.core_sched_class()->SetCookie(t, cookie);
  auto loop = std::make_shared<std::function<void(Task*)>>();
  Kernel* kernel = &m.kernel();
  *loop = [kernel, chunk, loop](Task* task) { kernel->StartBurst(task, chunk, *loop); };
  m.kernel().StartBurst(t, chunk, *loop);
  m.kernel().Wake(t);
  return t;
}

TEST(CoreSchedTest, TwoVmsNeverShareACore) {
  Machine m(Topology::Make("t", 1, 1, 2, 1), CostModel(), /*with_core_sched=*/true);
  // One core, two VMs with two threads each: they must timeshare the core as
  // whole pairs.
  std::vector<Task*> tasks;
  for (int vm = 1; vm <= 2; ++vm) {
    for (int i = 0; i < 2; ++i) {
      tasks.push_back(
          CookieHog(m, "vm" + std::to_string(vm) + "/" + std::to_string(i), vm));
    }
  }
  m.RunFor(Milliseconds(200));
  EXPECT_EQ(m.core_sched_class()->violations(), 0u);
  EXPECT_GT(m.core_sched_class()->rotations(), 5u) << "slice rotation must happen";
  // Fairness: both VMs make comparable progress.
  const Duration vm1 = tasks[0]->total_runtime() + tasks[1]->total_runtime();
  const Duration vm2 = tasks[2]->total_runtime() + tasks[3]->total_runtime();
  EXPECT_NEAR(static_cast<double>(vm1) / static_cast<double>(vm2), 1.0, 0.35);
}

class CoreSchedStressTest : public ::testing::TestWithParam<int> {};

TEST_P(CoreSchedStressTest, NoViolationsUnderChurn) {
  const int num_vms = GetParam();
  Machine m(Topology::Make("t", 1, 4, 2, 4), CostModel(), /*with_core_sched=*/true);
  std::vector<Task*> tasks;
  // VMs whose threads run random bursts and block for random gaps.
  for (int vm = 1; vm <= num_vms; ++vm) {
    for (int i = 0; i < 2; ++i) {
      Task* t = m.kernel().CreateTask("vm" + std::to_string(vm) + "/" + std::to_string(i),
                                      m.core_sched_class());
      m.core_sched_class()->SetCookie(t, vm);
      auto loop = std::make_shared<std::function<void(Task*)>>();
      Kernel* kernel = &m.kernel();
      EventLoop* el = &m.loop();
      auto rng_ptr = std::make_shared<Rng>(vm * 100 + i);
      *loop = [kernel, el, rng_ptr, loop](Task* task) {
        kernel->Block(task);
        const auto gap = static_cast<Duration>(rng_ptr->NextBounded(500'000) + 1000);
        el->ScheduleAfter(gap, [kernel, task, rng_ptr, loop] {
          const auto burst = static_cast<Duration>(rng_ptr->NextBounded(2'000'000) + 10'000);
          kernel->StartBurst(task, burst, *loop);
          kernel->Wake(task);
        });
      };
      const auto burst = static_cast<Duration>(rng_ptr->NextBounded(2'000'000) + 10'000);
      m.kernel().StartBurst(t, burst, *loop);
      m.kernel().Wake(t);
      tasks.push_back(t);
    }
  }
  m.RunFor(Milliseconds(300));
  EXPECT_EQ(m.core_sched_class()->violations(), 0u) << num_vms << " VMs";
  // Everyone made progress (no starvation).
  for (Task* t : tasks) {
    EXPECT_GT(t->total_runtime(), 0) << t->name();
  }
}

INSTANTIATE_TEST_SUITE_P(VmCounts, CoreSchedStressTest, ::testing::Values(2, 4, 6, 10));

// --- ghOSt secure-VM policy -------------------------------------------------------

class VmPolicyTest : public ::testing::TestWithParam<int> {};

TEST_P(VmPolicyTest, OversubscribedVmsRotateSecurely) {
  const int num_vms = GetParam();
  Machine m(Topology::Make("t", 1, 4, 2, 4));
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  VmWorkload vms(&m.kernel(), {.num_vms = num_vms,
                               .vcpus_per_vm = 2,
                               .work_per_vcpu = Milliseconds(30)});
  VmCoreSchedPolicy::Options options;
  options.global_cpu = 0;
  options.slice = Milliseconds(3);
  VmWorkload* ptr = &vms;
  options.cookie_of = [ptr](int64_t tid) { return ptr->CookieOf(tid); };
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<VmCoreSchedPolicy>(options));
  process.Start();
  for (Task* vcpu : vms.vcpus()) {
    enclave->AddTask(vcpu);
  }
  vms.StartSecuritySampler(Microseconds(200));
  vms.Start();
  // 3 schedulable cores (agent owns one of 4): heavy oversubscription.
  while (!vms.AllDone() && m.now() < Seconds(10)) {
    m.RunFor(Milliseconds(20));
  }
  EXPECT_TRUE(vms.AllDone()) << "every vCPU must finish (no VM starved)";
  EXPECT_EQ(vms.coresidency_violations(), 0u);
  auto* policy = static_cast<VmCoreSchedPolicy*>(process.policy());
  if (num_vms > 3) {
    EXPECT_GT(policy->cores_scheduled(), static_cast<uint64_t>(num_vms))
        << "oversubscription requires rotation";
  }
}

INSTANTIATE_TEST_SUITE_P(VmCounts, VmPolicyTest, ::testing::Values(2, 3, 6, 9));

TEST(VmPolicyTest, SoloVcpuForcesSiblingIdle) {
  Machine m(Topology::Make("t", 1, 2, 2, 2));
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  // One VM with a single vCPU: its core's sibling must be forced idle, and
  // no other thread may land there.
  VmWorkload vms(&m.kernel(),
                 {.num_vms = 1, .vcpus_per_vm = 1, .work_per_vcpu = Milliseconds(20)});
  VmCoreSchedPolicy::Options options;
  options.global_cpu = 0;
  VmWorkload* ptr = &vms;
  options.cookie_of = [ptr](int64_t tid) { return ptr->CookieOf(tid); };
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<VmCoreSchedPolicy>(options));
  process.Start();
  enclave->AddTask(vms.vcpus()[0]);
  vms.Start();
  m.RunFor(Milliseconds(5));
  ASSERT_EQ(vms.vcpus()[0]->state(), TaskState::kRunning);
  const int cpu = vms.vcpus()[0]->cpu();
  const int sibling = m.kernel().topology().cpu(cpu).sibling;
  EXPECT_TRUE(m.ghost_class()->forced_idle(sibling));
  EXPECT_TRUE(m.kernel().CpuIdle(sibling));
}

}  // namespace
}  // namespace gs
