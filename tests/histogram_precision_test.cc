// Precision sweep for the HDR-style histogram (regression guard for the
// bucket-reconstruction bug found during Fig 6 bring-up, where percentiles
// were overstated ~2.6x).
#include <gtest/gtest.h>

#include "src/base/histogram.h"
#include "src/base/rng.h"

namespace gs {
namespace {

class HistogramPrecisionTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramPrecisionTest, SingleValueReconstructsWithin4Percent) {
  const int64_t value = GetParam();
  Histogram h;
  h.Add(value);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    const int64_t got = h.Percentile(p);
    EXPECT_GE(got, value - 1) << "p" << p << " value " << value
                              << " (never under-report)";
    EXPECT_LE(got, value + value / 25 + 1) << "p" << p << " value " << value;
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramPrecisionTest,
                         ::testing::Values(0, 1, 5, 63, 64, 100, 1000, 10'150, 123'456,
                                           1'000'000, 123'456'789, 10'000'000'000LL,
                                           4'000'000'000'000LL));

TEST(HistogramPrecisionTest, UniformPercentilesTrackTruth) {
  // 100k uniform samples in [0, 1e6): pX should be ~X * 1e4 within bucket
  // error (~4%).
  Histogram h;
  Rng rng(77);
  for (int i = 0; i < 100'000; ++i) {
    h.Add(static_cast<int64_t>(rng.NextBounded(1'000'000)));
  }
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double truth = p / 100.0 * 1e6;
    const double got = static_cast<double>(h.Percentile(p));
    EXPECT_NEAR(got / truth, 1.0, 0.05) << "p" << p;
  }
}

TEST(HistogramPrecisionTest, BimodalTailSeparation) {
  // The Fig 6 workload shape: p99 must sit in the short mode, p99.9 in the
  // long mode.
  Histogram h;
  Rng rng(78);
  for (int i = 0; i < 200'000; ++i) {
    h.Add(rng.NextBernoulli(0.005) ? 10'000'000 : 10'000);
  }
  EXPECT_LT(h.Percentile(99), 20'000);
  EXPECT_GT(h.Percentile(99.9), 9'000'000);
}

TEST(HistogramPrecisionTest, MeanIsExact) {
  Histogram h;
  int64_t sum = 0;
  for (int64_t v : {5, 100, 100'000, 123'456'789}) {
    h.Add(v);
    sum += v;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), static_cast<double>(sum) / 4.0)
      << "mean uses the exact sum, not bucket values";
}

}  // namespace
}  // namespace gs
