// Tests for the workload substrates: MiniRocks, the request-service engine,
// load generation, batch apps, Snap, the VM workload.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "src/workloads/batch.h"
#include "src/workloads/request_service.h"
#include "src/workloads/rocksdb.h"
#include "src/workloads/snap.h"
#include "src/workloads/vm_workload.h"
#include "tests/test_util.h"

namespace gs {
namespace {

// --- MiniRocks ------------------------------------------------------------------

TEST(MiniRocksTest, PutGetRoundTrip) {
  MiniRocks db;
  db.Put("alpha", "1");
  db.Put("beta", "2");
  EXPECT_EQ(db.Get("alpha"), "1");
  EXPECT_EQ(db.Get("beta"), "2");
  EXPECT_FALSE(db.Get("gamma").has_value());
  EXPECT_EQ(db.stats().gets, 3u);
  EXPECT_EQ(db.stats().hits, 2u);
}

TEST(MiniRocksTest, OverwriteBumpsSequence) {
  MiniRocks db;
  const uint64_t s1 = db.Put("k", "v1");
  const uint64_t s2 = db.Put("k", "v2");
  EXPECT_GT(s2, s1);
  EXPECT_EQ(db.Get("k"), "v2");
  EXPECT_EQ(db.ApproximateSize(), 1u);
}

TEST(MiniRocksTest, DeleteIsTombstone) {
  MiniRocks db;
  db.Put("k", "v");
  EXPECT_TRUE(db.Delete("k"));
  EXPECT_FALSE(db.Get("k").has_value());
  EXPECT_FALSE(db.Delete("k")) << "double delete";
  // Re-insert resurrects.
  db.Put("k", "v2");
  EXPECT_EQ(db.Get("k"), "v2");
}

TEST(MiniRocksTest, ScanOrderedAndBounded) {
  MiniRocks db;
  db.LoadSyntheticKeys(100, 8);
  db.Delete(MiniRocks::KeyFor(5));
  auto rows = db.Scan(MiniRocks::KeyFor(0), MiniRocks::KeyFor(10), 100);
  EXPECT_EQ(rows.size(), 9u) << "10 keys in range minus 1 tombstone";
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first) << "ordered";
  }
  auto limited = db.Scan(MiniRocks::KeyFor(0), MiniRocks::KeyFor(100), 7);
  EXPECT_EQ(limited.size(), 7u);
}

class MiniRocksSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(MiniRocksSweepTest, LoadAndFullScan) {
  const int n = GetParam();
  MiniRocks db;
  db.LoadSyntheticKeys(n, 16);
  EXPECT_EQ(db.ApproximateSize(), static_cast<size_t>(n));
  auto rows = db.Scan("", "~", n + 1);
  EXPECT_EQ(rows.size(), static_cast<size_t>(n));
  EXPECT_EQ(db.last_sequence(), static_cast<uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MiniRocksSweepTest, ::testing::Values(1, 10, 1000, 10000));

// --- PoissonLoadGen -----------------------------------------------------------------

class PoissonRateTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonRateTest, ArrivalRateMatches) {
  const double rate = GetParam();
  EventLoop loop;
  FixedServiceModel model(Microseconds(1));
  int64_t count = 0;
  PoissonLoadGen gen(&loop, &model, rate, 42, [&](Time, Duration) { ++count; });
  gen.Start(Seconds(2));
  loop.RunUntilIdle();
  const double measured = static_cast<double>(count) / 2.0;
  EXPECT_NEAR(measured / rate, 1.0, 0.05) << "rate " << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, PoissonRateTest, ::testing::Values(1e3, 1e4, 1e5, 5e5));

TEST(ServiceModelTest, BimodalMixture) {
  BimodalServiceModel model(Microseconds(10), Milliseconds(10), 0.01);
  Rng rng(5);
  int longs = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Duration d = model.Sample(rng);
    if (d == Milliseconds(10)) {
      ++longs;
    } else {
      EXPECT_EQ(d, Microseconds(10));
    }
  }
  EXPECT_NEAR(static_cast<double>(longs) / n, 0.01, 0.003);
  EXPECT_NEAR(model.MeanNs(), 0.99 * 10e3 + 0.01 * 10e6, 1.0);
}

TEST(ServiceModelTest, ExponentialMean) {
  ExponentialServiceModel model(Microseconds(100));
  Rng rng(6);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(model.Sample(rng));
  }
  EXPECT_NEAR(sum / n / 1e3, 100.0, 3.0);
}

// --- ThreadPoolServer ---------------------------------------------------------------

TEST(ThreadPoolServerTest, CompletesAllRequestsAndConservesWork) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  ThreadPoolServer server(&m.kernel(), {.num_workers = 8});
  for (int i = 0; i < 100; ++i) {
    server.Submit(m.now(), Microseconds(50));
  }
  m.RunFor(Milliseconds(50));
  EXPECT_EQ(server.completed(), 100);
  EXPECT_EQ(server.pending(), 0u);
  EXPECT_EQ(server.free_workers(), 8);
  Duration total = 0;
  for (Task* w : server.workers()) {
    total += w->total_runtime();
  }
  EXPECT_EQ(total, 100 * Microseconds(50)) << "work conservation";
}

TEST(ThreadPoolServerTest, QueuesWhenPoolExhausted) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  ThreadPoolServer server(&m.kernel(), {.num_workers = 2});
  for (int i = 0; i < 10; ++i) {
    server.Submit(m.now(), Milliseconds(1));
  }
  EXPECT_EQ(server.pending(), 8u);
  m.RunFor(Milliseconds(20));
  EXPECT_EQ(server.completed(), 10);
  // Latency grows with queue position: p99 >> p50.
  EXPECT_GT(server.latency().PercentileUs(99), server.latency().PercentileUs(10) * 2);
}

TEST(ThreadPoolServerTest, DropsBeyondMaxPending) {
  Machine m(Topology::Make("t", 1, 1, 1, 1));
  ThreadPoolServer server(&m.kernel(), {.num_workers = 1, .max_pending = 5});
  for (int i = 0; i < 20; ++i) {
    server.Submit(m.now(), Milliseconds(1));
  }
  EXPECT_EQ(server.dropped(), 14);  // 1 assigned + 5 queued
  m.RunFor(Milliseconds(20));
  EXPECT_EQ(server.completed(), 6);
}

// --- BatchApp --------------------------------------------------------------------------

TEST(BatchAppTest, SoaksIdleCpus) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  BatchApp batch(&m.kernel(), {.num_threads = 4});
  batch.Start();
  batch.MarkWindow();
  const Time start = m.now();
  m.RunFor(Milliseconds(100));
  EXPECT_NEAR(batch.CpuShare(start, m.now(), 4), 1.0, 0.02);
}

TEST(BatchAppTest, WindowAccounting) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  BatchApp batch(&m.kernel(), {.num_threads = 2});
  batch.Start();
  m.RunFor(Milliseconds(10));
  batch.MarkWindow();
  const Duration before = batch.TotalRuntime();
  m.RunFor(Milliseconds(10));
  EXPECT_NEAR(static_cast<double>(batch.RuntimeSinceMark()),
              static_cast<double>(batch.TotalRuntime() - before), 1.0);
}

// --- Snap --------------------------------------------------------------------------------

TEST(SnapTest, AllMessagesCompleteUnderCfs) {
  Machine m(Topology::Make("t", 1, 8, 2, 8));
  SnapSystem snap(&m.kernel(), {.msgs_per_sec_per_flow = 2000, .seed = 3});
  snap.Start(Milliseconds(200));
  m.RunFor(Milliseconds(250));
  // 6 flows x 2k/s x 0.2s = ~2400 expected.
  EXPECT_GT(snap.completed(), 2000);
  EXPECT_GT(snap.small_latency().count(), 300);
  EXPECT_GT(snap.large_latency().count(), 1500);
  // RTT >= wire constant + processing.
  EXPECT_GE(snap.small_latency().PercentileUs(0.1), 80.0);
}

TEST(SnapTest, LargeMessagesSlowerThanSmall) {
  Machine m(Topology::Make("t", 1, 8, 2, 8));
  SnapSystem snap(&m.kernel(), {.msgs_per_sec_per_flow = 2000, .seed = 4});
  snap.Start(Milliseconds(200));
  m.RunFor(Milliseconds(250));
  EXPECT_GT(snap.large_latency().PercentileUs(50), snap.small_latency().PercentileUs(50));
}

// --- VmWorkload ------------------------------------------------------------------------------

TEST(VmWorkloadTest, CookiesGroupVcpusByVm) {
  Machine m(Topology::Make("t", 1, 4, 2, 4));
  VmWorkload vms(&m.kernel(), {.num_vms = 3, .vcpus_per_vm = 2});
  ASSERT_EQ(vms.vcpus().size(), 6u);
  EXPECT_EQ(vms.CookieOf(vms.vcpus()[0]->tid()), vms.CookieOf(vms.vcpus()[1]->tid()));
  EXPECT_NE(vms.CookieOf(vms.vcpus()[1]->tid()), vms.CookieOf(vms.vcpus()[2]->tid()));
  EXPECT_EQ(vms.CookieOf(99999), 0) << "unknown tid";
}

TEST(VmWorkloadTest, CompletesExactWork) {
  Machine m(Topology::Make("t", 1, 4, 2, 4));
  VmWorkload vms(&m.kernel(),
                 {.num_vms = 2, .vcpus_per_vm = 2, .work_per_vcpu = Milliseconds(10)});
  vms.Start();
  m.RunFor(Milliseconds(100));
  EXPECT_TRUE(vms.AllDone());
  for (Task* vcpu : vms.vcpus()) {
    EXPECT_EQ(vcpu->state(), TaskState::kDead);
    EXPECT_EQ(vcpu->total_runtime(), Milliseconds(10));
  }
  for (Time t : vms.completions()) {
    EXPECT_GT(t, 0);
  }
}

// --- WindowedSeries -------------------------------------------------------------------

TEST(WindowedSeriesTest, BucketsByWindow) {
  WindowedSeries series(Seconds(1));
  series.Add(Milliseconds(100), Microseconds(5));
  series.Add(Milliseconds(900), Microseconds(10));
  series.Add(Milliseconds(1500), Microseconds(20));
  ASSERT_EQ(series.num_windows(), 2);
  EXPECT_EQ(series.CountAt(0), 2);
  EXPECT_EQ(series.CountAt(1), 1);
  EXPECT_DOUBLE_EQ(series.RateAt(0), 2.0);
  EXPECT_NEAR(series.PercentileUsAt(1, 99), 20.0, 1.0);
}

}  // namespace
}  // namespace gs
