// Dedicated MicroQuanta tests: budget enforcement across parameter choices,
// window semantics, blackout length, and interaction with blocking workers.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

struct MqParams {
  Duration period;
  Duration quanta;
};

class MqBudgetTest : public ::testing::TestWithParam<MqParams> {};

TEST_P(MqBudgetTest, HogGetsExactlyItsBudgetShare) {
  const MqParams params = GetParam();
  Machine m(Topology::Make("t", 1, 1, 1, 1), CostModel());
  // Need a custom-parameterized class: build a bespoke machine stack.
  EventLoop loop;
  Kernel kernel(&loop, Topology::Make("t", 1, 1, 1, 1));
  auto agent = std::make_unique<AgentClass>();
  auto mq = std::make_unique<MicroQuantaClass>(
      MicroQuantaClass::Params{params.period, params.quanta});
  auto cfs = std::make_unique<CfsClass>();
  MicroQuantaClass* mq_ptr = mq.get();
  std::vector<std::unique_ptr<SchedClass>> classes;
  classes.push_back(std::move(agent));
  classes.push_back(std::move(mq));
  classes.push_back(std::move(cfs));
  kernel.InstallClasses(std::move(classes), /*default_index=*/2);

  Task* hog = SpawnHog(kernel, "mq-hog", mq_ptr, Milliseconds(50));
  Task* background = SpawnHog(kernel, "cfs-hog", nullptr, Milliseconds(50));
  loop.RunUntil(Milliseconds(200));

  const double share = static_cast<double>(hog->total_runtime()) /
                       static_cast<double>(Milliseconds(200));
  const double expected = static_cast<double>(params.quanta) /
                          static_cast<double>(params.period);
  EXPECT_NEAR(share, expected, 0.06)
      << "period " << params.period << " quanta " << params.quanta;
  // The leftover goes to CFS.
  EXPECT_NEAR(static_cast<double>(background->total_runtime()) /
                  static_cast<double>(Milliseconds(200)),
              1.0 - expected, 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, MqBudgetTest,
    ::testing::Values(MqParams{Milliseconds(1), Nanoseconds(900'000)},
                      MqParams{Milliseconds(1), Nanoseconds(500'000)},
                      MqParams{Milliseconds(2), Nanoseconds(1'500'000)},
                      MqParams{Microseconds(500), Microseconds(400)}));

TEST(MicroQuantaTest, BlackoutBoundedByPeriodMinusQuanta) {
  // Measure the longest continuous interval the MQ hog is off-CPU while
  // runnable: it must be ~period - quanta (the §4.3 "networking blackout").
  Machine m(Topology::Make("t", 1, 1, 1, 1));
  m.kernel().trace().Enable();
  Task* hog = SpawnHog(m.kernel(), "mq", m.mq_class(), Milliseconds(50));
  SpawnHog(m.kernel(), "cfs", nullptr, Milliseconds(50));
  m.RunFor(Milliseconds(100));

  Duration longest_gap = 0;
  Time last_out = -1;
  for (const TraceEvent& event : m.kernel().trace().ForTask(hog->tid())) {
    if (event.type == TraceEventType::kSwitchOut) {
      last_out = event.when;
    } else if (event.type == TraceEventType::kSwitchIn && last_out >= 0) {
      longest_gap = std::max(longest_gap, event.when - last_out);
      last_out = -1;
    }
  }
  EXPECT_GE(longest_gap, Microseconds(90)) << "throttling must produce blackouts";
  EXPECT_LE(longest_gap, Microseconds(115)) << "but bounded by period - quanta";
}

TEST(MicroQuantaTest, BlockingWorkerUnaffectedByBudgetAtLowUtilization) {
  // A worker that needs only 10% CPU never hits its quanta: its wakeup
  // latency stays flat (no blackouts at low utilization).
  Machine m(Topology::Make("t", 1, 1, 1, 1));
  Task* worker = m.kernel().CreateTask("worker", m.mq_class());
  auto max_latency = std::make_shared<Duration>(0);
  Kernel* kernel = &m.kernel();
  EventLoop* loop = &m.loop();
  auto chain = std::make_shared<std::function<void(Task*)>>();
  auto wake_time = std::make_shared<Time>(0);
  *chain = [kernel, loop, chain, max_latency, wake_time](Task* task) {
    *max_latency = std::max(*max_latency,
                            kernel->now() - *wake_time - Microseconds(100));
    kernel->Block(task);
    loop->ScheduleAfter(Microseconds(900), [kernel, task, chain, wake_time] {
      *wake_time = kernel->now();
      kernel->StartBurst(task, Microseconds(100), *chain);
      kernel->Wake(task);
    });
  };
  *wake_time = 0;
  m.kernel().StartBurst(worker, Microseconds(100), *chain);
  m.kernel().Wake(worker);
  SpawnHog(m.kernel(), "cfs", nullptr, Milliseconds(1));
  m.RunFor(Milliseconds(100));
  EXPECT_EQ(m.mq_class()->throttle_count(), 0u);
  EXPECT_LT(*max_latency, Microseconds(5)) << "wakeup latency flat at low load";
}

}  // namespace
}  // namespace gs
