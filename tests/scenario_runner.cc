// Golden-expectation regression suite over the built-in scenario battery.
//
//   scenario_runner                      check every built-in against its golden
//   scenario_runner --scenario=<name>    check (or update) just one
//   scenario_runner --jobs=N             fan scenarios across N threads
//   scenario_runner --goldens=<dir>      golden directory override
//   scenario_runner --update-goldens     rewrite goldens from current behavior
//
// Exit 0 = all checked scenarios match; 1 = mismatch or missing golden;
// 2 = usage error. Scenarios fan out across a BatchRunner, one
// SimulationContext per scenario, so results are independent of --jobs; the
// golden render itself is deterministic, so --update-goldens twice in a row
// is a byte-level no-op.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/scenario/registry.h"
#include "src/scenario/scenario_runner.h"
#include "src/sim/batch_runner.h"

#ifndef GHOST_SIM_GOLDENS_DIR
#define GHOST_SIM_GOLDENS_DIR "scenarios/goldens"
#endif

namespace {

std::string GoldenPath(const std::string& dir, const std::string& name) {
  return dir + "/" + name + ".golden.json";
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string goldens_dir = GHOST_SIM_GOLDENS_DIR;
  std::string only;
  bool update = false;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--update-goldens") == 0) {
      update = true;
    } else if (std::strncmp(a, "--goldens=", 10) == 0) {
      goldens_dir = a + 10;
    } else if (std::strncmp(a, "--scenario=", 11) == 0) {
      only = a + 11;
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      jobs = std::atoi(a + 7);
    } else {
      std::fprintf(stderr,
                   "scenario_runner: unknown flag \"%s\"\n"
                   "usage: scenario_runner [--scenario=<name>] [--jobs=N]\n"
                   "                       [--goldens=<dir>] [--update-goldens]\n",
                   a);
      return 2;
    }
  }

  std::vector<std::string> names;
  for (const std::string& name : gs::scenario::BuiltinScenarioNames()) {
    if (only.empty() || only == name) {
      names.push_back(name);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "scenario_runner: no built-in scenario matches \"%s\"\n",
                 only.c_str());
    return 2;
  }

  // Run every scenario, each on its own SimulationContext. Slot-indexed
  // results make the outcome independent of --jobs.
  const gs::BatchRunner runner(jobs);
  const std::vector<gs::scenario::ScenarioResult> results =
      runner.Map<gs::scenario::ScenarioResult>(
          static_cast<int>(names.size()), [&names](int k) {
            const gs::scenario::ScenarioSpec spec =
                gs::scenario::GetBuiltinScenario(names[static_cast<size_t>(k)]);
            return gs::scenario::RunScenario(spec);
          });

  int failures = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const std::string path = GoldenPath(goldens_dir, names[i]);
    if (update) {
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "scenario_runner: cannot write %s\n", path.c_str());
        return 1;
      }
      out << gs::scenario::RenderGolden(results[i]);
      std::printf("updated %s\n", path.c_str());
      continue;
    }
    std::string golden;
    if (!ReadFile(path, &golden)) {
      std::fprintf(stderr, "FAIL %s: missing golden %s (run --update-goldens)\n",
                   names[i].c_str(), path.c_str());
      ++failures;
      continue;
    }
    std::vector<std::string> problems;
    if (gs::scenario::CheckGolden(results[i], golden, &problems)) {
      std::printf("ok   %s\n", names[i].c_str());
    } else {
      ++failures;
      std::printf("FAIL %s\n", names[i].c_str());
      for (const std::string& p : problems) {
        std::printf("     %s\n", p.c_str());
      }
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d scenario(s) failed their goldens\n", failures);
    return 1;
  }
  return 0;
}
