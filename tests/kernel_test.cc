// Tests for the simulated kernel: task lifecycle, CFS behaviour, SMT speed
// factors, MicroQuanta throttling, accounting exactness, determinism.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Topology SmallTopo(int cores, int smt = 1) {
  return Topology::Make("test", 1, cores, smt, cores);
}

TEST(KernelTest, OneShotTaskRunsAndExits) {
  Machine m(SmallTopo(1));
  Task* task = SpawnOneShot(m.kernel(), "t", Microseconds(10));
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->total_runtime(), Microseconds(10));
}

TEST(KernelTest, ContextSwitchCostDelaysCompletion) {
  Machine m(SmallTopo(1));
  Time done_at = 0;
  Task* task = m.kernel().CreateTask("t");
  m.kernel().StartBurst(task, Microseconds(10), [&](Task* t) {
    done_at = m.now();
    m.kernel().Exit(t);
  });
  m.kernel().Wake(task);
  m.RunFor(Milliseconds(1));
  // Wake -> resched event (0) -> context switch (599 ns) -> 10 us burst.
  EXPECT_EQ(done_at, m.kernel().cost().context_switch + Microseconds(10));
}

TEST(KernelTest, TwoHogsShareOneCpuFairly) {
  Machine m(SmallTopo(1));
  Task* a = SpawnHog(m.kernel(), "a");
  Task* b = SpawnHog(m.kernel(), "b");
  m.RunFor(Milliseconds(200));
  const double ratio =
      static_cast<double>(a->total_runtime()) / static_cast<double>(b->total_runtime());
  EXPECT_NEAR(ratio, 1.0, 0.15);
  // Together they consumed nearly all CPU time.
  EXPECT_GT(a->total_runtime() + b->total_runtime(), Milliseconds(190));
}

TEST(KernelTest, NiceWeightsSkewCpuShare) {
  Machine m(SmallTopo(1));
  Task* fav = m.kernel().CreateTask("fav");
  m.kernel().SetNice(fav, -5);
  Task* meh = m.kernel().CreateTask("meh");
  m.kernel().SetNice(meh, 5);
  for (Task* t : {fav, meh}) {
    auto loop = std::make_shared<std::function<void(Task*)>>();
    *loop = [&m, loop](Task* task) { m.kernel().StartBurst(task, Milliseconds(10), *loop); };
    m.kernel().StartBurst(t, Milliseconds(10), *loop);
    m.kernel().Wake(t);
  }
  m.RunFor(Milliseconds(500));
  // weight(-5)/weight(5) = 3121/335 ~ 9.3.
  const double ratio =
      static_cast<double>(fav->total_runtime()) / static_cast<double>(meh->total_runtime());
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 14.0);
}

TEST(KernelTest, WakePlacementSpreadsAcrossIdleCpus) {
  Machine m(SmallTopo(4));
  std::vector<Task*> hogs;
  for (int i = 0; i < 4; ++i) {
    hogs.push_back(SpawnHog(m.kernel(), "h" + std::to_string(i)));
  }
  m.RunFor(Milliseconds(50));
  // All four should run in parallel: each gets ~full time.
  for (Task* hog : hogs) {
    EXPECT_GT(hog->total_runtime(), Milliseconds(45)) << hog->name();
  }
}

TEST(KernelTest, IdleBalancePullsQueuedWork) {
  Machine m(SmallTopo(2));
  // Pin three hogs to CPU 0 initially via affinity, then open the mask: the
  // idle CPU 1 should pull.
  std::vector<Task*> hogs;
  for (int i = 0; i < 3; ++i) {
    Task* hog = SpawnHog(m.kernel(), "h" + std::to_string(i), nullptr, Milliseconds(1));
    m.kernel().SetAffinity(hog, CpuMask::Single(0));
    hogs.push_back(hog);
  }
  m.RunFor(Milliseconds(5));
  for (Task* hog : hogs) {
    m.kernel().SetAffinity(hog, CpuMask::AllUpTo(2));
  }
  m.RunFor(Milliseconds(100));
  Duration total = 0;
  for (Task* hog : hogs) {
    total += hog->total_runtime();
  }
  // With both CPUs used, aggregate runtime must clearly exceed one CPU's
  // capacity over the window.
  EXPECT_GT(total, Milliseconds(160));
  EXPECT_GT(m.cfs_class()->steals(), 0u);
}

TEST(KernelTest, BlockedTaskResumesOnWake) {
  Machine m(SmallTopo(1));
  Task* task = m.kernel().CreateTask("sleeper");
  int phases = 0;
  m.kernel().StartBurst(task, Microseconds(5), [&](Task* t) {
    ++phases;
    m.kernel().Block(t);
  });
  m.kernel().Wake(task);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(phases, 1);
  EXPECT_EQ(task->state(), TaskState::kBlocked);

  m.kernel().StartBurst(task, Microseconds(5), [&](Task* t) {
    ++phases;
    m.kernel().Exit(t);
  });
  m.kernel().Wake(task);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(phases, 2);
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->total_runtime(), Microseconds(10));
}

TEST(KernelTest, SmtContentionSlowsBothSiblings) {
  Machine m(SmallTopo(1, /*smt=*/2));  // one core, two hyperthreads
  Time a_done = 0, b_done = 0;
  Task* a = m.kernel().CreateTask("a");
  Task* b = m.kernel().CreateTask("b");
  m.kernel().StartBurst(a, Microseconds(100), [&](Task* t) {
    a_done = m.now();
    m.kernel().Exit(t);
  });
  m.kernel().StartBurst(b, Microseconds(100), [&](Task* t) {
    b_done = m.now();
    m.kernel().Exit(t);
  });
  m.kernel().Wake(a);
  m.kernel().Wake(b);
  m.RunFor(Milliseconds(2));
  // Both run concurrently at the contention factor (0.7) most of the time:
  // expected completion ~ 100us / 0.7 = 143us (plus switch costs).
  EXPECT_GT(a_done, Microseconds(120));
  EXPECT_LT(a_done, Microseconds(160));
  EXPECT_GT(b_done, Microseconds(120));
  EXPECT_LT(b_done, Microseconds(160));
}

TEST(KernelTest, SmtSpeedRecoversWhenSiblingIdles) {
  Machine m(SmallTopo(1, /*smt=*/2));
  Time a_done = 0;
  Task* a = m.kernel().CreateTask("a");
  m.kernel().StartBurst(a, Microseconds(100), [&](Task* t) {
    a_done = m.now();
    m.kernel().Exit(t);
  });
  // Short sibling: 10us of contention, then `a` runs at full speed.
  Task* b = SpawnOneShot(m.kernel(), "b", Microseconds(10));
  (void)b;
  m.kernel().Wake(a);
  m.RunFor(Milliseconds(2));
  // a progressed ~10us*0.7=7us during contention, then ~93us at full speed:
  // total ~ 107us; well below the fully-contended 143us.
  EXPECT_LT(a_done, Microseconds(125));
  EXPECT_GT(a_done, Microseconds(100));
}

TEST(KernelTest, MicroQuantaThrottlingLeavesBlackouts) {
  Machine m(SmallTopo(1));
  Task* mq = SpawnHog(m.kernel(), "mq", m.mq_class(), Milliseconds(100));
  Task* cfs = SpawnHog(m.kernel(), "cfs", nullptr, Milliseconds(100));
  m.RunFor(Milliseconds(100));
  // MicroQuanta gets ~0.9 of every 1ms period, CFS the remaining ~0.1.
  EXPECT_NEAR(static_cast<double>(mq->total_runtime()) / Milliseconds(100), 0.9, 0.05);
  EXPECT_NEAR(static_cast<double>(cfs->total_runtime()) / Milliseconds(100), 0.1, 0.05);
  EXPECT_GT(m.mq_class()->throttle_count(), 50u);
}

TEST(KernelTest, MicroQuantaPreemptsCfsImmediately) {
  Machine m(SmallTopo(1));
  SpawnHog(m.kernel(), "cfs");
  m.RunFor(Milliseconds(5));
  Time woke = m.now();
  Time ran_at = -1;
  Task* mq = m.kernel().CreateTask("mq", m.mq_class());
  m.kernel().StartBurst(mq, Microseconds(50), [&](Task* t) {
    ran_at = m.now();
    m.kernel().Exit(t);
  });
  m.kernel().Wake(mq);
  m.RunFor(Milliseconds(5));
  ASSERT_GE(ran_at, 0);
  // Preempted CFS promptly: wake -> resched -> switch -> 50us.
  EXPECT_LT(ran_at - woke, Microseconds(60));
}

TEST(KernelTest, AffinityPinsTask) {
  Machine m(SmallTopo(4));
  Task* pinned = SpawnHog(m.kernel(), "pinned", nullptr, Microseconds(100));
  m.kernel().SetAffinity(pinned, CpuMask::Single(2));
  m.RunFor(Milliseconds(20));
  EXPECT_EQ(pinned->state(), TaskState::kRunning);
  EXPECT_EQ(pinned->cpu(), 2);
  EXPECT_GT(m.kernel().CpuBusyTime(2), Milliseconds(19));
}

TEST(KernelTest, PreemptionPreservesProgressAccounting) {
  Machine m(SmallTopo(1));
  Time done = 0;
  Task* victim = m.kernel().CreateTask("victim");
  m.kernel().StartBurst(victim, Microseconds(100), [&](Task* t) {
    done = m.now();
    m.kernel().Exit(t);
  });
  m.kernel().Wake(victim);
  // At t=50us, a MicroQuanta task arrives and preempts for 20us.
  m.loop().ScheduleAt(Microseconds(50), [&] {
    SpawnOneShot(m.kernel(), "intruder", Microseconds(20), m.mq_class());
  });
  m.RunFor(Milliseconds(2));
  EXPECT_EQ(victim->total_runtime(), Microseconds(100))
      << "burst demand must be conserved across preemption";
  // Completion delayed by the intruder's 20us + switch overheads.
  EXPECT_GT(done, Microseconds(120));
  EXPECT_LT(done, Microseconds(125));
}

TEST(KernelTest, DeterministicAcrossRuns) {
  auto run = [] {
    Machine m(SmallTopo(4, 2));
    std::vector<Task*> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back(SpawnHog(m.kernel(), "h" + std::to_string(i), nullptr,
                               Microseconds(100 + 13 * i)));
    }
    m.RunFor(Milliseconds(50));
    std::vector<Duration> runtimes;
    for (Task* t : tasks) {
      runtimes.push_back(t->total_runtime());
    }
    runtimes.push_back(static_cast<Duration>(m.kernel().total_context_switches()));
    return runtimes;
  };
  EXPECT_EQ(run(), run());
}

TEST(KernelTest, KillRunnableAndBlockedTasks) {
  Machine m(SmallTopo(1));
  Task* hog = SpawnHog(m.kernel(), "hog");
  Task* queued = SpawnHog(m.kernel(), "queued");
  m.RunFor(Milliseconds(1));
  // One runs, one queued; kill both.
  m.kernel().Kill(hog);
  m.kernel().Kill(queued);
  m.RunFor(Milliseconds(5));
  EXPECT_EQ(hog->state(), TaskState::kDead);
  EXPECT_EQ(queued->state(), TaskState::kDead);
  EXPECT_TRUE(m.kernel().CpuIdle(0));
}

TEST(KernelTest, BlockRewakeInDeschedWindowIsFreshPlacement) {
  // ttwu wake_pending regression: a task that blocks and is re-woken before
  // its deschedule completes is re-picked as next == old, but it went through
  // schedule() — it must be treated as freshly placed, so its on-scheduled
  // hook fires again. (The broken resume path silently swallowed the hook,
  // which wedged a blocked-then-instantly-rewoken agent forever.)
  Machine m(SmallTopo(1));
  Task* task = m.kernel().CreateTask("t");
  int scheduled = 0;
  m.kernel().SetOnScheduled(task, [&](Task*) { ++scheduled; });
  m.kernel().StartBurst(task, Microseconds(10), [&m](Task* t) {
    // Block, then wake while still on-CPU (the deschedule resched event is
    // pending): Wake() must defer via wake_pending, exactly the ttwu-on_cpu
    // race, and the rewake lands in the same event-loop batch.
    m.kernel().Block(t);
    m.kernel().StartBurst(t, Microseconds(10),
                          [&m](Task* t2) { m.kernel().Exit(t2); });
    m.kernel().Wake(t);
  });
  m.kernel().Wake(task);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->total_runtime(), Microseconds(20));
  EXPECT_EQ(scheduled, 2) << "re-pick after block+rewake must re-run the "
                             "on-scheduled hook";
}

TEST(KernelTest, ZeroLengthBurstSurvivesSameInstantPreemption) {
  // A zero-length burst arms a zero-delay completion event; the redundant
  // resched queued by the rewake's wakeup-preemption check fires first (same
  // timestamp, earlier sequence), deschedules the task, and cancels that
  // completion. Re-placement must re-arm it — has_burst() is false for a
  // zero-length burst, so without has_pending_burst_done() the completion
  // callback is lost and the task wedges forever.
  Machine m(SmallTopo(1));
  Task* task = m.kernel().CreateTask("t");
  m.kernel().StartBurst(task, Microseconds(10), [&m](Task* t) {
    m.kernel().Block(t);
    m.kernel().StartBurst(t, Duration{0},
                          [&m](Task* t2) { m.kernel().Exit(t2); });
    m.kernel().Wake(t);
  });
  m.kernel().Wake(task);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead)
      << "zero-length burst completion was lost across the preemption";
}

TEST(KernelTest, BusyTimeAccounting) {
  Machine m(SmallTopo(2));
  SpawnOneShot(m.kernel(), "t", Milliseconds(3));
  m.RunFor(Milliseconds(10));
  const Duration busy = m.kernel().CpuBusyTime(0) + m.kernel().CpuBusyTime(1);
  EXPECT_GE(busy, Milliseconds(3));
  EXPECT_LT(busy, Milliseconds(3) + Microseconds(5));
}

}  // namespace
}  // namespace gs
