// Tests for the §3.3 hot handoff: "Whenever a non-ghOSt thread needs to run
// on the global agent's CPU, the global agent performs a 'hot handoff' to an
// inactive agent on another CPU."
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Task* GhostWorker(Machine& m, Enclave& enclave, const std::string& name, Duration burst,
                  int repeats) {
  Task* t = m.kernel().CreateTask(name);
  enclave.AddTask(t);
  Kernel* kernel = &m.kernel();
  EventLoop* loop_ptr = &m.loop();
  auto remaining = std::make_shared<int>(repeats);
  auto loop = std::make_shared<std::function<void(Task*)>>();
  *loop = [kernel, loop_ptr, remaining, burst, loop](Task* task) {
    if (--*remaining <= 0) {
      kernel->Exit(task);
      return;
    }
    kernel->Block(task);
    loop_ptr->ScheduleAfter(Microseconds(50), [kernel, task, burst, loop] {
      kernel->StartBurst(task, burst, *loop);
      kernel->Wake(task);
    });
  };
  kernel->StartBurst(t, burst, *loop);
  kernel->Wake(t);
  return t;
}

TEST(HotHandoffTest, PinnedCfsThreadEvictsGlobalAgent) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(4));
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 0;
  auto policy = std::make_unique<CentralizedFifoPolicy>(options);
  CentralizedFifoPolicy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();

  // Keep the agent busy with ghOSt work so it is actually spinning.
  Task* worker = GhostWorker(m, *enclave, "w", Microseconds(100), 300);
  m.RunFor(Milliseconds(2));
  ASSERT_EQ(policy_ptr->global_cpu(), 0);

  // A kernel daemon pinned to CPU 0 (the paper's per-CPU worker-thread
  // example) needs the agent's CPU.
  Task* daemon = m.kernel().CreateTask("kworker");
  m.kernel().SetAffinity(daemon, CpuMask::Single(0));
  Time daemon_done = -1;
  m.kernel().StartBurst(daemon, Milliseconds(1), [&](Task* t) {
    daemon_done = m.now();
    m.kernel().Exit(t);
  });
  const Time woke = m.now();
  m.kernel().Wake(daemon);
  m.RunFor(Milliseconds(10));

  // The agent handed its CPU over and kept scheduling from a new home.
  EXPECT_GE(daemon_done, 0) << "pinned CFS daemon must run";
  EXPECT_LT(daemon_done - woke, Milliseconds(3)) << "handoff must be prompt";
  EXPECT_GT(policy_ptr->hot_handoffs(), 0u);
  EXPECT_NE(policy_ptr->global_cpu(), 0);
  // ghOSt work keeps flowing across the handoff (300 x ~150us ~ 45 ms).
  m.RunFor(Milliseconds(80));
  EXPECT_EQ(worker->state(), TaskState::kDead);
  EXPECT_EQ(worker->total_runtime(), Microseconds(100) * 300);
}

TEST(HotHandoffTest, NoIdleCpuMeansNoHandoff) {
  // Single-CPU enclave: nowhere to hand off to; the agent keeps scheduling
  // and the pinned CFS thread waits, as on a fully busy machine.
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::Single(0));
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 0;
  auto policy = std::make_unique<CentralizedFifoPolicy>(options);
  CentralizedFifoPolicy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();
  Task* daemon = m.kernel().CreateTask("kworker");
  m.kernel().SetAffinity(daemon, CpuMask::Single(0));
  m.kernel().StartBurst(daemon, Microseconds(100), [&m](Task* t) { m.kernel().Exit(t); });
  m.kernel().Wake(daemon);
  m.RunFor(Milliseconds(5));
  EXPECT_EQ(policy_ptr->hot_handoffs(), 0u);
  EXPECT_EQ(policy_ptr->global_cpu(), 0);
}

TEST(HotHandoffTest, AgentUpgradeResetsWatchdogClock) {
  // Regression for the watchdog-vs-upgrade race: a thread's runnable wait is
  // measured from runnable_since(), which an agent handoff does not reset. A
  // freshly registered agent inherits threads that may have been runnable
  // through the whole upgrade window; without restarting the measurement the
  // watchdog destroys the enclave before the new agent had any chance.
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(5);
  config.watchdog_period = Milliseconds(1);
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2), config);

  // A runnable ghOSt thread with no agent: the watchdog clock is ticking.
  Task* w = m.kernel().CreateTask("w");
  enclave->AddTask(w);
  m.kernel().StartBurst(w, Microseconds(10),
                        [&m](Task* t) { m.kernel().Exit(t); });
  m.kernel().Wake(w);
  m.RunFor(Milliseconds(4));  // runnable 4 ms < 5 ms timeout
  ASSERT_FALSE(enclave->destroyed());

  // Agent upgrade at t=4ms: the handoff must restart the wait accounting.
  Task* agent = m.kernel().CreateTask("agent2", m.agent_class());
  enclave->RegisterAgentTask(1, agent);
  m.RunFor(Milliseconds(4));
  // t=8ms: 8 ms since the wakeup (over the timeout) but only 4 ms since the
  // handoff — the fresh agent still has time.
  EXPECT_FALSE(enclave->destroyed())
      << "watchdog charged the new agent for its predecessor's backlog";

  // The new agent never schedules the thread either: now blame is deserved.
  m.RunFor(Milliseconds(3));  // 7 ms since the handoff
  EXPECT_TRUE(enclave->destroyed());
  // Destruction moved the thread back to CFS, where it finishes.
  m.RunFor(Milliseconds(2));
  EXPECT_EQ(w->state(), TaskState::kDead);
}

}  // namespace
}  // namespace gs
