// Tests for the ghOSt core: messages, sequence numbers, transactions,
// watchdog fallback, queue association, forced idle, fast path.
#include <gtest/gtest.h>

#include "src/ghost/machine.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Topology SmallTopo(int cores, int smt = 1) {
  return Topology::Make("test", 1, cores, smt, cores);
}

class GhostTest : public ::testing::Test {
 protected:
  void Build(int cores, Enclave::Config config = Enclave::Config()) {
    machine_ = std::make_unique<Machine>(SmallTopo(cores));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores), config);
  }

  // Creates a one-shot ghOSt thread (not yet woken).
  Task* GhostTask_(const std::string& name, Duration burst) {
    Task* task = machine_->kernel().CreateTask(name);
    enclave_->AddTask(task);
    machine_->kernel().StartBurst(task, burst,
                                  [this](Task* t) { machine_->kernel().Exit(t); });
    return task;
  }

  // Directly commits (tid -> cpu) as if from an agent, with no agent context.
  TxnStatus CommitOne(int64_t tid, int cpu, std::optional<uint32_t> tseq = std::nullopt) {
    Transaction txn;
    txn.tid = tid;
    txn.target_cpu = cpu;
    txn.expected_tseq = tseq;
    Transaction* ptr = &txn;
    enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                         [](int) { return Duration{0}; });
    return txn.status;
  }

  std::vector<Message> DrainDefault() {
    std::vector<Message> out;
    while (auto msg = enclave_->PopMessage(enclave_->default_queue())) {
      out.push_back(*msg);
    }
    return out;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
};

TEST_F(GhostTest, AddTaskPostsThreadCreated) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(10));
  auto msgs = DrainDefault();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].type, MessageType::kTaskNew);
  EXPECT_EQ(msgs[0].tid, task->tid());
  EXPECT_EQ(msgs[0].tseq, 1u);
  EXPECT_FALSE(msgs[0].runnable) << "created but not yet woken";
}

TEST_F(GhostTest, WakeupMessageAndTseqMonotonic) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(10));
  machine_->kernel().Wake(task);
  auto msgs = DrainDefault();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[1].type, MessageType::kTaskWakeup);
  EXPECT_GT(msgs[1].tseq, msgs[0].tseq);
  const TaskStatusWord* status = enclave_->task_status(task->tid());
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->tseq, msgs[1].tseq);
  EXPECT_TRUE(status->runnable);
}

TEST_F(GhostTest, CommitRunsThreadAndPostsDead) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(10));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->total_runtime(), Microseconds(10));
  auto msgs = DrainDefault();
  ASSERT_GE(msgs.size(), 3u);
  EXPECT_EQ(msgs.back().type, MessageType::kTaskDead);
}

TEST_F(GhostTest, StaleTseqFailsWithEstale) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(10));
  machine_->kernel().Wake(task);  // bumps tseq to 2
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(task->tid(), 1, /*tseq=*/1), TxnStatus::kEStale);
  EXPECT_EQ(CommitOne(task->tid(), 1, /*tseq=*/2), TxnStatus::kCommitted);
}

TEST_F(GhostTest, BlockedThreadNotRunnable) {
  Build(2);
  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);
  EXPECT_EQ(CommitOne(task->tid(), 1), TxnStatus::kENotRunnable);
}

TEST_F(GhostTest, UnknownTidInvalid) {
  Build(2);
  EXPECT_EQ(CommitOne(4242, 1), TxnStatus::kEInvalid);
}

TEST_F(GhostTest, CpuOutsideEnclaveInvalid) {
  machine_ = std::make_unique<Machine>(SmallTopo(4));
  enclave_ = machine_->CreateEnclave(CpuMask::Single(0) | CpuMask::Single(1));
  Task* task = machine_->kernel().CreateTask("w");
  enclave_->AddTask(task);
  machine_->kernel().StartBurst(task, Microseconds(5),
                                [this](Task* t) { machine_->kernel().Exit(t); });
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(task->tid(), 3), TxnStatus::kEInvalid);
}

TEST_F(GhostTest, CfsOccupiedCpuBusy) {
  Build(2);
  SpawnHog(machine_->kernel(), "cfs-hog", nullptr, Milliseconds(10));
  machine_->RunFor(Milliseconds(1));
  // The hog landed on some CPU; committing there must fail.
  const int busy_cpu = machine_->kernel().CpuIdle(0) ? 1 : 0;
  Task* task = GhostTask_("w", Microseconds(10));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(task->tid(), busy_cpu), TxnStatus::kECpuBusy);
}

TEST_F(GhostTest, DoubleCommitSameCpuTxnPending) {
  Build(2);
  Task* a = GhostTask_("a", Microseconds(10));
  Task* b = GhostTask_("b", Microseconds(10));
  machine_->kernel().Wake(a);
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));
  EXPECT_EQ(CommitOne(a->tid(), 1), TxnStatus::kCommitted);
  EXPECT_EQ(CommitOne(b->tid(), 1), TxnStatus::kETxnPending);
}

TEST_F(GhostTest, CommitPreemptsRunningGhostThread) {
  Build(2);
  Task* a = GhostTask_("a", Milliseconds(10));
  Task* b = GhostTask_("b", Microseconds(10));
  machine_->kernel().Wake(a);
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(a->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Microseconds(50));
  ASSERT_EQ(a->state(), TaskState::kRunning);
  // §3.3: a transaction for a CPU already running a ghOSt thread preempts it.
  EXPECT_EQ(CommitOne(b->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(b->state(), TaskState::kDead);
  EXPECT_EQ(a->state(), TaskState::kRunnable) << "preempted, awaiting re-schedule";
  bool saw_preempt = false;
  for (const Message& msg : DrainDefault()) {
    if (msg.type == MessageType::kTaskPreempted && msg.tid == a->tid()) {
      saw_preempt = true;
    }
  }
  EXPECT_TRUE(saw_preempt);
}

TEST_F(GhostTest, SyncGroupAllOrNothing) {
  Build(4);
  Task* a = GhostTask_("a", Microseconds(10));
  Task* b = GhostTask_("b", Microseconds(10));
  machine_->kernel().Wake(a);  // b stays blocked -> its txn must fail
  machine_->RunFor(Microseconds(1));

  Transaction ta;
  ta.tid = a->tid();
  ta.target_cpu = 1;
  ta.sync_group = 7;
  Transaction tb;
  tb.tid = b->tid();
  tb.target_cpu = 2;
  tb.sync_group = 7;
  std::vector<Transaction*> txns = {&ta, &tb};
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kEAborted) << "sibling failed, so the group aborts";
  EXPECT_EQ(tb.status, TxnStatus::kENotRunnable);

  // Wake b: now the group commits atomically.
  machine_->kernel().Wake(b);
  machine_->RunFor(Microseconds(1));
  ta.status = TxnStatus::kPending;
  tb.status = TxnStatus::kPending;
  enclave_->TxnsCommit(txns, nullptr, [](int) { return Duration{0}; });
  EXPECT_EQ(ta.status, TxnStatus::kCommitted);
  EXPECT_EQ(tb.status, TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(a->state(), TaskState::kDead);
  EXPECT_EQ(b->state(), TaskState::kDead);
}

TEST_F(GhostTest, IdleTransactionForcesCpuIdle) {
  Build(2);
  Task* a = GhostTask_("a", Microseconds(100));
  machine_->kernel().Wake(a);
  machine_->RunFor(Microseconds(1));

  Transaction idle;
  idle.target_cpu = 1;
  idle.idle = true;
  Transaction* ptr = &idle;
  enclave_->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr,
                       [](int) { return Duration{0}; });
  EXPECT_EQ(idle.status, TxnStatus::kCommitted);
  machine_->RunFor(Microseconds(10));
  EXPECT_TRUE(machine_->ghost_class()->forced_idle(1));
  // A ghOSt thread cannot land there now...
  EXPECT_EQ(CommitOne(a->tid(), 1), TxnStatus::kCommitted);
  // ... wait: a new commit clears forced idle (next latch wins).
  machine_->RunFor(Milliseconds(1));
  EXPECT_FALSE(machine_->ghost_class()->forced_idle(1));
  EXPECT_EQ(a->state(), TaskState::kDead);
}

TEST_F(GhostTest, AffinityChangeDefeatsInFlightCommit) {
  Build(2);
  Task* a = GhostTask_("a", Microseconds(10));
  machine_->kernel().Wake(a);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(a->tid(), 1), TxnStatus::kCommitted);
  // Before the latch is picked (IPI in flight), forbid CPU 1.
  machine_->kernel().SetAffinity(a, CpuMask::Single(0));
  machine_->RunFor(Milliseconds(1));
  // §3.3's scenario: the thread must NOT have run on CPU 1.
  EXPECT_NE(a->state(), TaskState::kDead);
  EXPECT_NE(a->last_cpu(), 1);
}

TEST_F(GhostTest, AssociateQueueFailsWithPendingMessages) {
  Build(2);
  Task* task = GhostTask_("w", Microseconds(10));
  MessageQueue* other = enclave_->CreateQueue();
  // The THREAD_CREATED message is still undrained.
  EXPECT_FALSE(enclave_->AssociateQueue(task->tid(), other));
  DrainDefault();
  EXPECT_TRUE(enclave_->AssociateQueue(task->tid(), other));
  // Subsequent messages go to the new queue.
  machine_->kernel().Wake(task);
  EXPECT_EQ(DrainDefault().size(), 0u);
  EXPECT_EQ(other->size(), 1u);
}

TEST_F(GhostTest, WatchdogDestroysEnclaveAndFallsBackToCfs) {
  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(20);
  config.watchdog_period = Milliseconds(5);
  Build(2, config);
  Task* task = GhostTask_("w", Microseconds(10));
  machine_->kernel().Wake(task);
  // No agent ever schedules it; the watchdog must destroy the enclave and
  // CFS must then run the thread to completion.
  machine_->RunFor(Milliseconds(100));
  EXPECT_TRUE(enclave_->destroyed());
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->sched_class(), machine_->kernel().default_class());
}

TEST_F(GhostTest, DestroyMovesRunningThreadsToCfs) {
  Build(2);
  Task* task = GhostTask_("w", Milliseconds(50));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(task->state(), TaskState::kRunning);
  enclave_->Destroy();
  machine_->RunFor(Milliseconds(100));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(task->total_runtime(), Milliseconds(50));
}

TEST_F(GhostTest, FastPathSchedulesPublishedThread) {
  Build(2);
  auto fastpath = RingFastPath::Global(2);
  RingFastPath* fp = fastpath.get();
  enclave_->InstallFastPath(std::move(fastpath));
  Task* task = GhostTask_("w", Microseconds(10));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  // Agent-side publish; an idle CPU's pick-next consults the ring.
  EXPECT_TRUE(fp->Publish(0, task->tid()));
  machine_->kernel().ReschedCpu(1);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(task->state(), TaskState::kDead);
  EXPECT_EQ(machine_->ghost_class()->fastpath_picks(), 1u);
}

TEST_F(GhostTest, FastPathSkipsStaleEntries) {
  Build(2);
  auto fastpath = RingFastPath::Global(2);
  RingFastPath* fp = fastpath.get();
  enclave_->InstallFastPath(std::move(fastpath));
  Task* blocked = GhostTask_("blocked", Microseconds(10));  // never woken
  Task* ok = GhostTask_("ok", Microseconds(10));
  machine_->kernel().Wake(ok);
  machine_->RunFor(Microseconds(1));
  EXPECT_TRUE(fp->Publish(0, blocked->tid()));  // stale: not runnable
  EXPECT_TRUE(fp->Publish(0, 31337));           // stale: no such thread
  EXPECT_TRUE(fp->Publish(0, ok->tid()));
  machine_->kernel().ReschedCpu(1);
  machine_->RunFor(Milliseconds(1));
  EXPECT_EQ(ok->state(), TaskState::kDead);
  EXPECT_EQ(blocked->state(), TaskState::kCreated);
}

TEST_F(GhostTest, TaskDumpReflectsState) {
  Build(2);
  Task* runnable = GhostTask_("r", Microseconds(10));
  Task* blocked = GhostTask_("b", Microseconds(10));
  machine_->kernel().Wake(runnable);
  machine_->RunFor(Microseconds(1));
  const auto dump = enclave_->TaskDump();
  ASSERT_EQ(dump.size(), 2u);
  for (const auto& info : dump) {
    if (info.tid == runnable->tid()) {
      EXPECT_TRUE(info.runnable);
    } else {
      EXPECT_EQ(info.tid, blocked->tid());
      EXPECT_FALSE(info.runnable);
    }
  }
}

TEST_F(GhostTest, TimerTickMessagesWhileGhostThreadRuns) {
  Build(2);
  Task* task = GhostTask_("w", Milliseconds(10));
  machine_->kernel().Wake(task);
  machine_->RunFor(Microseconds(1));
  ASSERT_EQ(CommitOne(task->tid(), 1), TxnStatus::kCommitted);
  machine_->RunFor(Milliseconds(5));
  int ticks = 0;
  for (const Message& msg : DrainDefault()) {
    if (msg.type == MessageType::kTimerTick && msg.cpu == 1) {
      ++ticks;
    }
  }
  EXPECT_GE(ticks, 3) << "1 ms ticks while a ghOSt thread runs";
  EXPECT_LE(ticks, 6);
}

}  // namespace
}  // namespace gs
