// Live A/B hot-swap tests (§3.4 agent upgrade, extended): the Restore()
// contract for hostile outgoing policies, lane-counter accounting that must
// partition the single-policy totals, and byte-identical scenario results
// across --jobs.
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/agent/agent_process.h"
#include "src/agent/dispatch_policy.h"
#include "src/ghost/machine.h"
#include "src/policies/ab_test_policy.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/scenario/registry.h"
#include "src/scenario/scenario_runner.h"

namespace gs {
namespace {

// A legal-but-hostile policy that acknowledges nothing: it drains the
// enclave's default queue (so the kernel side stays healthy) but never
// places a thread anywhere. Stand-in for the fuzzer's generated policies in
// the upgrade-contract test: every thread announced while it reigns is a
// thread the outgoing policy never scheduled.
class DeafPolicy : public DispatchPolicy {
 public:
  const char* name() const override { return "deaf"; }
  void Attached(AgentProcess* process, Enclave* enclave, Kernel* kernel) override {
    enclave_ = enclave;
    boss_cpu_ = enclave->cpus().First();
    enclave->ConfigQueueWakeup(enclave->default_queue(),
                               process->agent_on(boss_cpu_));
  }

 protected:
  void CollectQueues(AgentContext& ctx, std::vector<MessageQueue*>* queues) override {
    if (ctx.agent_cpu() == boss_cpu_) {
      queues->push_back(enclave_->default_queue());
    }
  }
  AgentAction Schedule(AgentContext& ctx) override { return AgentAction::kBlock; }

 private:
  Enclave* enclave_ = nullptr;
  int boss_cpu_ = -1;
};

Task* OneShotWorker(Machine& m, Enclave& enclave, const std::string& name,
                    Duration burst) {
  Task* t = m.kernel().CreateTask(name);
  enclave.AddTask(t);
  Kernel* kernel = &m.kernel();
  kernel->StartBurst(t, burst, [kernel](Task* task) { kernel->Exit(task); });
  kernel->Wake(t);
  return t;
}

TEST(AbSwapTest, RestoreReplacesTasksTheOutgoingPolicyNeverPlaced) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(4));
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<DeafPolicy>());
  process.Start();

  std::vector<Task*> workers;
  for (int i = 0; i < 6; ++i) {
    workers.push_back(
        OneShotWorker(m, *enclave, "w" + std::to_string(i), Microseconds(100)));
  }
  m.RunFor(Milliseconds(5));
  for (Task* w : workers) {
    ASSERT_NE(w->state(), TaskState::kDead)
        << w->name() << " ran under a policy that never schedules";
  }

  // Swap in a real policy mid-run. Its Restore() sees only the kernel dump —
  // the deaf policy hands over no state — and must re-place every thread the
  // old policy sat on, never silently dropping them from the runqueue set.
  std::unique_ptr<Policy> old =
      process.SwapPolicy(std::make_unique<PerCpuFifoPolicy>());
  EXPECT_EQ(std::string(old->name()), "deaf");
  EXPECT_EQ(process.policy_swaps(), 1u);
  m.RunFor(Milliseconds(20));
  for (Task* w : workers) {
    EXPECT_EQ(w->state(), TaskState::kDead)
        << w->name() << " was dropped across the policy swap";
  }
  EXPECT_FALSE(enclave->destroyed());
}

TEST(AbSwapTest, SwapBackAndForthUnderLoadLosesNothing) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(4));
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<PerCpuFifoPolicy>());
  process.Start();

  std::vector<Task*> workers;
  for (int i = 0; i < 8; ++i) {
    workers.push_back(
        OneShotWorker(m, *enclave, "w" + std::to_string(i), Milliseconds(2)));
  }
  // Promote a canary and roll it back while the workers are mid-burst.
  m.RunFor(Milliseconds(1));
  AbTestPolicy::Options options;
  options.canary_percent = 50;
  process.SwapPolicy(std::make_unique<AbTestPolicy>(options));
  m.RunFor(Milliseconds(2));
  process.SwapPolicy(std::make_unique<PerCpuFifoPolicy>());
  EXPECT_EQ(process.policy_swaps(), 2u);
  m.RunFor(Milliseconds(30));
  for (Task* w : workers) {
    EXPECT_EQ(w->state(), TaskState::kDead) << w->name();
  }
  EXPECT_FALSE(enclave->destroyed());
}

// ---- Scenario-level accounting ---------------------------------------------

scenario::ScenarioSpec SpecWithCanaryPercent(int percent) {
  scenario::ScenarioSpec spec = scenario::GetBuiltinScenario("ab_hot_swap");
  spec.ab_test->canary.percent = percent;
  // With the behavioral delta off, the canary lane schedules exactly like
  // base, so the whole simulation is identical whatever the split — only the
  // counter attribution moves.
  spec.ab_test->canary.lifo = false;
  return spec;
}

TEST(AbScenarioTest, LaneCountersPartitionTheSinglePolicyTotals) {
  const scenario::ScenarioResult split = RunScenario(SpecWithCanaryPercent(30));
  const scenario::ScenarioResult single = RunScenario(SpecWithCanaryPercent(0));
  // The split run's per-lane counters must sum to the single-policy totals.
  EXPECT_EQ(split.exact.at("ab_base_scheduled") +
                split.exact.at("ab_canary_scheduled"),
            single.exact.at("ab_base_scheduled") +
                single.exact.at("ab_canary_scheduled"));
  EXPECT_EQ(split.exact.at("completed"), single.exact.at("completed"));
  EXPECT_EQ(split.exact.at("generated"), single.exact.at("generated"));
  // And the split actually splits: both lanes saw work. (The 0%-run still
  // counts canary work inside the promote window, where the whole enclave
  // runs at 100% canary — so it is a lower bound, not zero.)
  EXPECT_GT(split.exact.at("ab_base_scheduled"), 0);
  EXPECT_GT(split.exact.at("ab_canary_scheduled"),
            single.exact.at("ab_canary_scheduled"));
  // Promote + rollback both happened, in both runs.
  EXPECT_EQ(split.exact.at("policy_swaps"), 2);
  EXPECT_EQ(single.exact.at("policy_swaps"), 2);
}

TEST(AbScenarioTest, ResultIsByteIdenticalAcrossJobs) {
  const scenario::ScenarioSpec spec = scenario::GetBuiltinScenario("ab_hot_swap");
  const std::string one = RenderGolden(RunScenario(spec, nullptr, /*jobs=*/1));
  const std::string four = RenderGolden(RunScenario(spec, nullptr, /*jobs=*/4));
  EXPECT_EQ(one, four);
}

TEST(FuzzScenarioTest, ResultIsByteIdenticalAcrossJobs) {
  const scenario::ScenarioSpec spec = scenario::GetBuiltinScenario("fuzz_smoke");
  const std::string one = RenderGolden(RunScenario(spec, nullptr, /*jobs=*/1));
  const std::string four = RenderGolden(RunScenario(spec, nullptr, /*jobs=*/4));
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"fuzz_violations\":0"), std::string::npos) << one;
}

}  // namespace
}  // namespace gs
