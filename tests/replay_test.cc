// Deterministic replay: identical seeds must reproduce identical executions.
//
// The whole simulation — including every injected fault — is a deterministic
// function of (topology, workload, seed). The rolling trace digest folds
// every recorded event (switches, messages, commits, drops, faults) into one
// value at Record time, so two runs agree on the digest iff they agree on
// the full event history. This is the contract that makes chaos failures
// reproducible from just a seed.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/sim/fault_injector.h"
#include "tests/test_util.h"

namespace gs {
namespace {

std::unique_ptr<Policy> MakePolicy(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<PerCpuFifoPolicy>();
    default:
      return std::make_unique<CentralizedFifoPolicy>();
  }
}

// One full chaotic run: probabilistic faults (late/lost IPIs, ESTALE,
// overflow pressure) sampled from `seed`, plus a scheduled transient agent
// stall. Returns {digest, events recorded}.
std::pair<uint64_t, uint64_t> RunScenario(int policy_kind, uint64_t seed) {
  Machine machine(Topology::Make("replay", 1, 4, 1, 4));
  machine.kernel().trace().Enable();

  FaultInjector::Config faults;
  faults.ipi_delay_probability = 0.2;
  faults.ipi_drop_probability = 0.1;
  faults.estale_probability = 0.15;
  faults.msg_drop_probability = 0.02;
  FaultInjector injector(&machine.loop(), &machine.kernel().trace(), seed, faults);
  machine.kernel().set_fault_injector(&injector);

  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(60);
  auto enclave = machine.CreateEnclave(CpuMask::AllUpTo(4), config);
  AgentProcess process(&machine.kernel(), machine.ghost_class(), enclave.get(),
                       MakePolicy(policy_kind));
  process.Start();

  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    Task* task = machine.kernel().CreateTask("w" + std::to_string(i));
    enclave->AddTask(task);
    auto remaining = std::make_shared<int>(60);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    Kernel* kernel = &machine.kernel();
    EventLoop* loop_ptr = &machine.loop();
    *loop = [kernel, loop_ptr, remaining, loop](Task* t) {
      if (--*remaining <= 0) {
        kernel->Exit(t);
        return;
      }
      kernel->Block(t);
      loop_ptr->ScheduleAfter(Microseconds(50), [kernel, t, loop] {
        kernel->StartBurst(t, Microseconds(150), *loop);
        kernel->Wake(t);
      });
    };
    kernel->StartBurst(task, Microseconds(150), *loop);
    kernel->Wake(task);
  }

  // A transient stall (shorter than the watchdog bound) is part of the
  // scripted fault history.
  injector.At(Milliseconds(10), FaultKind::kAgentStall,
              [&process] { process.SetStalled(true); });
  machine.loop().ScheduleAt(Milliseconds(14), [&process] { process.SetStalled(false); });

  machine.RunFor(Milliseconds(50));
  EXPECT_FALSE(enclave->destroyed());
  return {machine.kernel().trace().digest(), machine.kernel().trace().recorded()};
}

TEST(ReplayTest, SameSeedReproducesIdenticalDigest) {
  const uint64_t seeds[] = {1, 12345, 0xdeadbeef};
  for (int policy = 0; policy < 2; ++policy) {
    for (uint64_t seed : seeds) {
      const auto first = RunScenario(policy, seed);
      const auto second = RunScenario(policy, seed);
      EXPECT_GT(first.second, 1000u) << "scenario should record a rich trace";
      EXPECT_EQ(first.first, second.first)
          << "policy " << policy << " seed " << seed << " diverged: "
          << first.second << " vs " << second.second << " events";
      EXPECT_EQ(first.second, second.second);
    }
  }
}

TEST(ReplayTest, DifferentSeedsDiverge) {
  for (int policy = 0; policy < 2; ++policy) {
    std::set<uint64_t> digests;
    for (uint64_t seed : {7u, 8u, 9u}) {
      digests.insert(RunScenario(policy, seed).first);
    }
    EXPECT_EQ(digests.size(), 3u) << "fault sampling must depend on the seed";
  }
}

}  // namespace
}  // namespace gs
