// Additional mechanism-level tests: AgentContext cost accounting, enclave
// API edges, kernel-side scheduling-latency accounting, and a machine-shape
// conservation sweep.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/per_cpu_fifo.h"
#include "tests/test_util.h"

namespace gs {
namespace {

// --- AgentContext cost ledger ---------------------------------------------------

class CostLedgerPolicy : public Policy {
 public:
  const char* name() const override { return "ledger"; }
  void Attached(AgentProcess*, Enclave* enclave, Kernel* kernel) override {
    enclave_ = enclave;
    kernel_ = kernel;
  }
  AgentAction RunAgent(AgentContext& ctx) override {
    if (!checked_) {
      checked_ = true;
      const CostModel& cost = kernel_->cost();
      const Duration base = ctx.cost();
      EXPECT_EQ(base, cost.agent_loop_fixed) << "iteration baseline";

      ctx.ReadAseq();
      EXPECT_EQ(ctx.cost(), base + cost.agent_per_cpu_scan);

      // Pop from an empty queue: free (nothing dequeued).
      const Duration before_pop = ctx.cost();
      EXPECT_FALSE(ctx.Pop(enclave_->default_queue()).has_value());
      EXPECT_EQ(ctx.cost(), before_pop);

      // A remote commit charges syscall + fixed + per-txn.
      const Duration before_commit = ctx.cost();
      Transaction txn = AgentContext::MakeTxn(/*tid=*/424242, /*cpu=*/1);
      Transaction* ptr = &txn;
      ctx.Commit(ptr);
      EXPECT_EQ(ctx.cost(), before_commit + cost.syscall + cost.remote_commit_fixed +
                                cost.remote_commit_per_txn);
      EXPECT_EQ(txn.status, TxnStatus::kEInvalid) << "unknown tid";
    }
    return AgentAction::kBlock;
  }
  bool checked_ = false;

 private:
  Enclave* enclave_ = nullptr;
  Kernel* kernel_ = nullptr;
};

TEST(AgentContextTest, CostLedgerMatchesCostModel) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  auto policy = std::make_unique<CostLedgerPolicy>();
  CostLedgerPolicy* ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();
  m.RunFor(Milliseconds(1));
  EXPECT_TRUE(ptr->checked_);
}

// --- Enclave API edges ---------------------------------------------------------------

TEST(EnclaveEdgeTest, RemoveTaskReturnsThreadToCfs) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  Task* t = m.kernel().CreateTask("w");
  enclave->AddTask(t);
  EXPECT_EQ(enclave->num_tasks(), 1);
  enclave->RemoveTask(t);
  EXPECT_EQ(enclave->num_tasks(), 0);
  EXPECT_EQ(t->sched_class(), m.kernel().default_class());
  // The thread still runs fine under CFS.
  m.kernel().StartBurst(t, Microseconds(10), [&m](Task* task) { m.kernel().Exit(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(1));
  EXPECT_EQ(t->state(), TaskState::kDead);
}

TEST(EnclaveEdgeTest, DestroyQueueReroutesTickQueue) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  MessageQueue* q = enclave->CreateQueue();
  enclave->SetCpuQueue(0, q);
  enclave->DestroyQueue(q);
  // TIMER_TICK routing fell back to the default queue; run a ghOSt thread on
  // CPU 0 and expect ticks there.
  Task* t = m.kernel().CreateTask("w");
  enclave->AddTask(t);
  m.kernel().StartBurst(t, Milliseconds(5), [&m](Task* task) { m.kernel().Exit(task); });
  m.kernel().Wake(t);
  m.RunFor(Microseconds(10));
  Transaction txn;
  txn.tid = t->tid();
  txn.target_cpu = 0;
  Transaction* ptr = &txn;
  enclave->TxnsCommit(std::span<Transaction*>(&ptr, 1), nullptr, [](int) { return Duration{0}; });
  ASSERT_EQ(txn.status, TxnStatus::kCommitted);
  m.RunFor(Milliseconds(4));
  int ticks = 0;
  while (auto msg = enclave->PopMessage(enclave->default_queue())) {
    ticks += msg->type == MessageType::kTimerTick ? 1 : 0;
  }
  EXPECT_GE(ticks, 2);
}

TEST(EnclaveEdgeTest, SchedLatencyHistogramRecordsDispatches) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<PerCpuFifoPolicy>());
  process.Start();
  Task* t = m.kernel().CreateTask("w");
  enclave->AddTask(t);
  m.kernel().StartBurst(t, Microseconds(10), [&m](Task* task) { m.kernel().Exit(task); });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(2));
  ASSERT_EQ(t->state(), TaskState::kDead);
  EXPECT_GE(enclave->sched_latency().count(), 1);
  // Wakeup-to-running through the whole machinery: single-digit microseconds.
  EXPECT_LT(enclave->sched_latency().Percentile(100), Microseconds(20));
  EXPECT_GT(enclave->sched_latency().Percentile(0), Nanoseconds(500));
}

TEST(EnclaveEdgeTest, AddTaskTwiceIsFatalButRemoveAddWorks) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  Task* t = m.kernel().CreateTask("w");
  enclave->AddTask(t);
  enclave->RemoveTask(t);
  enclave->AddTask(t);  // re-admission after removal is legal
  EXPECT_EQ(enclave->num_tasks(), 1);
}

// --- Machine-shape conservation sweep ---------------------------------------------------

struct Shape {
  int sockets;
  int cores;
  int smt;
  int ccx;
};

class ShapeSweepTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweepTest, CentralizedPolicyConservesWorkOnAnyTopology) {
  const Shape shape = GetParam();
  Machine m(Topology::Make("shape", shape.sockets, shape.cores, shape.smt, shape.ccx));
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<CentralizedFifoPolicy>());
  process.Start();

  const int n = m.kernel().topology().num_cpus() * 2;
  std::vector<Task*> tasks;
  for (int i = 0; i < n; ++i) {
    Task* t = m.kernel().CreateTask("w" + std::to_string(i));
    enclave->AddTask(t);
    Kernel* kernel = &m.kernel();
    EventLoop* loop_ptr = &m.loop();
    auto remaining = std::make_shared<int>(5);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    *loop = [kernel, loop_ptr, remaining, loop](Task* task) {
      if (--*remaining <= 0) {
        kernel->Exit(task);
        return;
      }
      kernel->Block(task);
      loop_ptr->ScheduleAfter(Microseconds(20), [kernel, task, loop] {
        kernel->StartBurst(task, Microseconds(50), *loop);
        kernel->Wake(task);
      });
    };
    kernel->StartBurst(t, Microseconds(50), *loop);
    kernel->Wake(t);
    tasks.push_back(t);
  }
  m.RunFor(Milliseconds(100));
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name() << " on " <<
        m.kernel().topology().name();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweepTest,
                         ::testing::Values(Shape{1, 2, 1, 2}, Shape{1, 4, 2, 4},
                                           Shape{2, 4, 2, 2}, Shape{2, 8, 2, 4},
                                           Shape{1, 16, 2, 4}));

}  // namespace
}  // namespace gs
