// O1 multilevel-queue policy tests: timeslice map, equal-priority fairness,
// priority differentiation with starvation freedom (the active/expired array
// swap), and survival of the chaos battery with invariants held.
#include "src/policies/o1.h"

#include <map>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/ghost/machine.h"
#include "src/sim/batch_runner.h"
#include "src/sim/simulation.h"
#include "src/verify/invariants.h"
#include "tests/test_util.h"

namespace gs {
namespace {

TEST(O1TimesliceTest, InterpolatesBaseToMinByPriority) {
  O1Policy::Options options;
  options.num_priorities = 8;
  options.base_timeslice = Milliseconds(6);
  options.min_timeslice = Milliseconds(1);
  O1Policy policy(options);
  EXPECT_EQ(policy.TimesliceFor(0), Milliseconds(6));
  EXPECT_EQ(policy.TimesliceFor(7), Milliseconds(1));
  for (int p = 1; p < 8; ++p) {
    EXPECT_LE(policy.TimesliceFor(p), policy.TimesliceFor(p - 1))
        << "timeslice must not grow as priority drops (p=" << p << ")";
    EXPECT_GE(policy.TimesliceFor(p), Milliseconds(1));
  }
}

TEST(O1TimesliceTest, SinglePriorityUsesBase) {
  O1Policy::Options options;
  options.num_priorities = 1;
  options.base_timeslice = Milliseconds(4);
  options.min_timeslice = Milliseconds(1);
  O1Policy policy(options);
  EXPECT_EQ(policy.TimesliceFor(0), Milliseconds(4));
}

class O1PolicyTest : public ::testing::Test {
 protected:
  // An O1 enclave over `num_cpus` CPUs; `prio_map` routes tids to priority
  // levels (tasks are registered in the map before entering the enclave).
  void Build(int num_cpus) {
    machine_ = std::make_unique<Machine>(
        Topology::Make("o1t", 1, num_cpus, 1, num_cpus), CostModel());
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(num_cpus));
    prio_map_ = std::make_shared<std::map<int64_t, int>>();
    O1Policy::Options options;
    options.num_priorities = 8;
    options.base_timeslice = Milliseconds(6);
    options.min_timeslice = Milliseconds(1);
    auto prio_map = prio_map_;
    options.priority_of = [prio_map](int64_t tid) {
      auto it = prio_map->find(tid);
      return it == prio_map->end() ? 4 : it->second;
    };
    auto policy = std::make_unique<O1Policy>(options);
    policy_ = policy.get();
    process_ = std::make_unique<AgentProcess>(&machine_->kernel(), machine_->ghost_class(),
                                              enclave_.get(), std::move(policy));
    process_->Start();
  }

  // A CPU hog at `prio`, already inside the enclave.
  Task* Hog(const std::string& name, int prio, Duration chunk = Milliseconds(2)) {
    Kernel& kernel = machine_->kernel();
    Task* task = kernel.CreateTask(name);
    (*prio_map_)[task->tid()] = prio;
    enclave_->AddTask(task);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    Kernel* kernel_ptr = &kernel;
    *loop = [kernel_ptr, chunk, loop](Task* t) {
      kernel_ptr->StartBurst(t, chunk, *loop);
    };
    kernel.StartBurst(task, chunk, *loop);
    kernel.Wake(task);
    return task;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
  std::shared_ptr<std::map<int64_t, int>> prio_map_;
  O1Policy* policy_ = nullptr;
  std::unique_ptr<AgentProcess> process_;
};

// Satellite acceptance: equal-priority competitors end with near-equal CPU
// shares. Four hogs on two CPUs for 240 ms => fair share is 120 ms each;
// the array swap plus per-generation slices must keep everyone within
// tolerance.
TEST_F(O1PolicyTest, EqualPriorityTasksShareCpuFairly) {
  Build(2);
  std::vector<Task*> hogs;
  for (int i = 0; i < 4; ++i) {
    hogs.push_back(Hog("hog" + std::to_string(i), /*prio=*/4));
  }
  machine_->RunFor(Milliseconds(240));

  Duration total = 0;
  Duration lo = kTimeNever;
  Duration hi = 0;
  for (Task* hog : hogs) {
    const Duration runtime = hog->total_runtime();
    total += runtime;
    lo = std::min(lo, runtime);
    hi = std::max(hi, runtime);
  }
  const double mean = static_cast<double>(total) / 4;
  EXPECT_GT(mean, ToSeconds(Milliseconds(80)) * 1e9)
      << "hogs barely ran; scheduling is broken";
  EXPECT_GE(static_cast<double>(lo), 0.70 * mean)
      << "worst-off hog got " << ToMillis(lo) << " ms of a " << ToMillis(total)
      << " ms pie";
  EXPECT_LE(static_cast<double>(hi), 1.30 * mean)
      << "best-off hog got " << ToMillis(hi) << " ms of a " << ToMillis(total)
      << " ms pie";
  EXPECT_GT(policy_->scheduled(), 0u);
  EXPECT_GT(policy_->array_swaps(), 0u) << "no array swap in 240 ms of contention";
  EXPECT_GT(policy_->slice_expirations(), 0u);
}

// Priority differentiation without starvation: on one CPU, priority 0 gets
// a 6x longer slice per array generation than priority 7, so its share
// dominates — but the expired-array swap guarantees the low-priority hog
// keeps making progress.
TEST_F(O1PolicyTest, HighPriorityDominatesButLowNeverStarves) {
  Build(1);
  Task* high = Hog("high", /*prio=*/0, Milliseconds(1));
  Task* low = Hog("low", /*prio=*/7, Milliseconds(1));
  machine_->RunFor(Milliseconds(200));

  const Duration high_rt = high->total_runtime();
  const Duration low_rt = low->total_runtime();
  EXPECT_GT(high_rt, low_rt) << "priority 0 must out-run priority 7";
  // ~6:1 slice ratio => low should still take roughly 1/7 of the CPU.
  EXPECT_GT(static_cast<double>(low_rt),
            0.05 * static_cast<double>(high_rt + low_rt))
      << "low-priority hog starved: " << ToMillis(low_rt) << " ms";
  EXPECT_GT(policy_->array_swaps(), 0u)
      << "starvation freedom depends on the array swap actually happening";
}

// A sleeper that wakes gets a fresh slice in the active array and preempts
// expired-array hogs promptly: its wake-to-done latency stays near its burst
// length even with the CPU saturated.
TEST_F(O1PolicyTest, SleeperRejoinsActiveArrayPromptly) {
  Build(1);
  Hog("hog", /*prio=*/4, Milliseconds(1));
  Kernel& kernel = machine_->kernel();
  Task* sleeper = kernel.CreateTask("sleeper");
  (*prio_map_)[sleeper->tid()] = 0;  // interactive: highest level
  enclave_->AddTask(sleeper);

  constexpr Duration kBurst = Microseconds(200);
  constexpr int kRounds = 20;
  auto done_times = std::make_shared<std::vector<Time>>();
  auto wake_times = std::make_shared<std::vector<Time>>();
  auto round = std::make_shared<std::function<void(Task*)>>();
  Kernel* kernel_ptr = &kernel;
  EventLoop* loop = &machine_->loop();
  *round = [kernel_ptr, loop, done_times, wake_times, round](Task* t) {
    done_times->push_back(kernel_ptr->now());
    if (done_times->size() >= kRounds) {
      kernel_ptr->Exit(t);
      return;
    }
    kernel_ptr->Block(t);
    loop->ScheduleAfter(Milliseconds(3), [kernel_ptr, wake_times, t, round] {
      wake_times->push_back(kernel_ptr->now());
      kernel_ptr->StartBurst(t, kBurst, *round);
      kernel_ptr->Wake(t);
    });
  };
  wake_times->push_back(kernel.now());
  kernel.StartBurst(sleeper, kBurst, *round);
  kernel.Wake(sleeper);

  machine_->RunFor(Milliseconds(150));
  ASSERT_EQ(done_times->size(), static_cast<size_t>(kRounds));
  // Every round: woken at w, done by w + burst + (bounded scheduling delay).
  // The hog's 1 ms chunks bound how long the sleeper can wait for the agent
  // to preempt, so a generous bound still proves active-array re-entry.
  for (size_t i = 0; i < done_times->size(); ++i) {
    const Duration latency = (*done_times)[i] - (*wake_times)[i];
    EXPECT_LT(latency, Milliseconds(3))
        << "round " << i << ": sleeper waited " << ToMillis(latency) << " ms";
  }
}

// Satellite acceptance: the chaos battery. ESTALE storms, dropped messages,
// and IPI faults, across seeds, must never wedge the policy: all work
// completes, invariants hold, serial == parallel.
TEST(O1ChaosTest, SurvivesChaosBatteryWithInvariantsHeld) {
  struct Outcome {
    uint64_t injected = 0;
    int64_t total_runtime = 0;
    bool all_done = false;
    bool invariants_ok = false;

    bool operator==(const Outcome& o) const {
      return injected == o.injected && total_runtime == o.total_runtime &&
             all_done == o.all_done && invariants_ok == o.invariants_ok;
    }
  };

  constexpr int kSeeds = 3;
  constexpr int kConfigs = 3;
  constexpr int kRuns = kSeeds * kConfigs;

  auto run_one = [](int index) -> Outcome {
    FaultInjector::Config faults;
    switch (index / kSeeds) {
      case 0:
        faults.estale_probability = 0.3;
        break;
      case 1:
        // IPI faults never fire for a per-CPU policy (O1 commits are all
        // local commit-and-yield), so this row combines the two fault kinds
        // that do bite it, unwindowed: stale commits while messages drop.
        faults.estale_probability = 0.15;
        faults.msg_drop_probability = 0.1;
        break;
      default:
        faults.msg_drop_probability = 0.2;
        faults.window_start = Milliseconds(2);
        faults.window_end = Milliseconds(8);
        break;
    }
    SimulationContext::Options options;
    options.topology = Topology::Make("o1chaos", 1, 2, 1, 2);
    options.seed = 42 + static_cast<uint64_t>(index % kSeeds);
    options.faults = faults;
    SimulationContext sim(std::move(options));

    auto enclave = sim.CreateEnclave(CpuMask::AllUpTo(2));
    O1Policy::Options o1;
    o1.num_priorities = 4;
    // Mixed priorities: tids alternate levels, so the storm hits both the
    // bitmap-pick path and the expired-array rotation.
    o1.priority_of = [](int64_t tid) { return static_cast<int>(tid % 4); };
    auto process =
        sim.CreateAgentProcess(enclave.get(), std::make_unique<O1Policy>(o1));
    process->Start();
    InvariantChecker checker(&sim.kernel());
    checker.Watch(enclave.get());
    checker.Start();

    constexpr Duration kBurst = Microseconds(300);
    constexpr int kBursts = 20;
    std::vector<Task*> tasks;
    for (int i = 0; i < 4; ++i) {
      Task* task = sim.kernel().CreateTask("w" + std::to_string(i));
      enclave->AddTask(task);
      auto remaining = std::make_shared<int>(kBursts);
      auto loop = std::make_shared<std::function<void(Task*)>>();
      Kernel* kernel = &sim.kernel();
      EventLoop* loop_ptr = &sim.loop();
      *loop = [kernel, loop_ptr, remaining, loop](Task* t) {
        if (--*remaining <= 0) {
          kernel->Exit(t);
          return;
        }
        kernel->Block(t);
        loop_ptr->ScheduleAfter(Microseconds(100), [kernel, t, loop] {
          kernel->StartBurst(t, kBurst, *loop);
          kernel->Wake(t);
        });
      };
      kernel->StartBurst(task, kBurst, *loop);
      kernel->Wake(task);
      tasks.push_back(task);
    }
    sim.RunFor(Milliseconds(400));

    Outcome out;
    out.injected = sim.fault_injector()->total_injected();
    out.all_done = true;
    for (Task* task : tasks) {
      out.total_runtime += task->total_runtime();
      out.all_done &= task->state() == TaskState::kDead &&
                      task->total_runtime() == kBurst * kBursts;
    }
    out.invariants_ok = checker.ok();
    return out;
  };

  std::vector<Outcome> serial(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    serial[i] = run_one(i);
  }
  std::vector<Outcome> parallel(kRuns);
  BatchRunner runner(4);
  runner.Run(kRuns, [&](int i) { parallel[i] = run_one(i); });

  for (int i = 0; i < kRuns; ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_TRUE(serial[i].invariants_ok);
    EXPECT_TRUE(serial[i].all_done) << "work lost under faults";
    EXPECT_GT(serial[i].injected, 0u);
    EXPECT_TRUE(serial[i] == parallel[i])
        << "parallel chaos run diverged from serial";
  }
}

}  // namespace
}  // namespace gs
