// Fleet layer tests: the deterministic network model (latency, bandwidth
// serialization, canonical flush order, partition/heal parking), the
// front-end load balancer strategies, and the Cluster's determinism
// contract — same seed => byte-identical results serially and on a thread
// pool, and partition/heal chaos leaves the invariant checkers clean.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/fleet/cluster.h"
#include "src/fleet/load_balancer.h"
#include "src/fleet/network.h"
#include "src/scenario/scenario.h"
#include "src/scenario/scenario_runner.h"

namespace gs {
namespace fleet {
namespace {

// ---- NetworkModel ----------------------------------------------------------

TEST(NetworkModelTest, DeliversAfterTransmitPlusLatency) {
  EventLoop a;
  EventLoop b;
  NetworkModel::Options options;
  options.default_latency = Microseconds(50);
  options.default_bytes_per_ns = 1.25;  // 10 Gbps
  NetworkModel net({&a, &b}, options);

  std::vector<Time> deliveries;
  net.Send(0, 1, 1250, [&] { deliveries.push_back(b.now()); });
  net.FlushAtBarrier();
  b.RunUntil(Milliseconds(1));
  // transmit = 1250 B / 1.25 B/ns = 1000 ns, plus 50 us propagation.
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], Microseconds(51));
  EXPECT_EQ(net.delivered(), 1);
}

TEST(NetworkModelTest, LinkBandwidthSerializesBackToBackSends) {
  EventLoop a;
  EventLoop b;
  NetworkModel::Options options;
  options.default_latency = Microseconds(50);
  options.default_bytes_per_ns = 1.25;
  NetworkModel net({&a, &b}, options);

  std::vector<Time> deliveries;
  // Both submitted at t=0: the second transmit queues behind the first on
  // the directed link, so deliveries are 1 transmit-time apart.
  net.Send(0, 1, 1250, [&] { deliveries.push_back(b.now()); });
  net.Send(0, 1, 1250, [&] { deliveries.push_back(b.now()); });
  net.FlushAtBarrier();
  b.RunUntil(Milliseconds(1));
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], Microseconds(51));
  EXPECT_EQ(deliveries[1], Microseconds(52));
}

TEST(NetworkModelTest, FlushOrderBreaksTiesByDstThenSrcThenSeq) {
  EventLoop a;
  EventLoop b;
  EventLoop c;
  NetworkModel::Options options;
  options.default_latency = Microseconds(50);
  options.default_bytes_per_ns = 1.25;
  NetworkModel net({&a, &b, &c}, options);

  // Same byte count on two distinct directed links, both sent at t=0: equal
  // delivery times. The canonical order must run src 0 before src 1.
  std::vector<int> order;
  net.Send(1, 2, 100, [&] { order.push_back(1); });
  net.Send(0, 2, 100, [&] { order.push_back(0); });
  net.FlushAtBarrier();
  c.RunUntil(Milliseconds(1));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
}

TEST(NetworkModelTest, PartitionParksAndHealRetransmits) {
  EventLoop a;
  EventLoop b;
  NetworkModel::Options options;
  options.default_latency = Microseconds(50);
  options.default_bytes_per_ns = 1.25;
  NetworkModel net({&a, &b}, options);

  net.SetNodeLinked(1, false, 0);
  std::vector<Time> deliveries;
  net.Send(0, 1, 1250, [&] { deliveries.push_back(b.now()); });
  net.FlushAtBarrier();
  b.RunUntil(Microseconds(100));
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(net.parked(), 1);
  EXPECT_EQ(net.parked_now(), 1);
  EXPECT_EQ(net.delivered(), 0);

  // Heal at t=100us: the parked message retransmits from the heal time.
  net.SetNodeLinked(1, true, Microseconds(100));
  net.FlushAtBarrier();
  b.RunUntil(Milliseconds(1));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], Microseconds(151));
  EXPECT_EQ(net.parked(), 1);  // cumulative
  EXPECT_EQ(net.parked_now(), 0);
  EXPECT_EQ(net.delivered(), 1);
}

TEST(NetworkModelTest, PerLinkOverrideAndMinLatency) {
  EventLoop a;
  EventLoop b;
  NetworkModel::Options options;
  options.default_latency = Microseconds(50);
  NetworkModel net({&a, &b}, options);
  EXPECT_EQ(net.min_latency(), Microseconds(50));
  net.SetLink(0, 1, Microseconds(10), 1.25);
  EXPECT_EQ(net.min_latency(), Microseconds(10));
}

// ---- LoadBalancer ----------------------------------------------------------

TEST(LoadBalancerTest, RoundRobinCyclesAndSkipsDraining) {
  LoadBalancer lb({.strategy = "round_robin", .num_machines = 3});
  EXPECT_EQ(lb.Route(0), 0);
  EXPECT_EQ(lb.Route(0), 1);
  EXPECT_EQ(lb.Route(0), 2);
  EXPECT_EQ(lb.Route(0), 0);
  lb.SetDraining(1, true);
  EXPECT_EQ(lb.Route(0), 2);
  EXPECT_EQ(lb.Route(0), 0);
  EXPECT_EQ(lb.Route(0), 2);
}

TEST(LoadBalancerTest, LeastLoadedPicksArgminLowestIndexFirst) {
  LoadBalancer lb({.strategy = "least_loaded", .num_machines = 3});
  EXPECT_EQ(lb.Route(0), 0);  // all tied -> lowest index
  lb.OnDispatch(0);
  EXPECT_EQ(lb.Route(0), 1);
  lb.OnDispatch(1);
  EXPECT_EQ(lb.Route(0), 2);
  lb.OnDispatch(2);
  lb.OnComplete(1);
  EXPECT_EQ(lb.Route(0), 1);
}

TEST(LoadBalancerTest, ShedsWhenEveryMachineIsAtCap) {
  LoadBalancer lb({.strategy = "least_loaded", .num_machines = 2,
                   .shed_outstanding = 1});
  EXPECT_EQ(lb.Route(0), 0);
  lb.OnDispatch(0);
  EXPECT_EQ(lb.Route(0), 1);
  lb.OnDispatch(1);
  EXPECT_EQ(lb.Route(0), -1);  // brownout
  lb.OnComplete(0);
  EXPECT_EQ(lb.Route(0), 0);
}

TEST(LoadBalancerTest, ConsistentHashIsStableAndFailsOver) {
  LoadBalancer lb({.strategy = "consistent_hash", .num_machines = 4,
                   .virtual_nodes = 32});
  const uint64_t session = 12345;
  const int home = lb.Route(session);
  ASSERT_GE(home, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lb.Route(session), home);  // stateless and stable
  }
  lb.SetDraining(home, true);
  const int failover = lb.Route(session);
  ASSERT_GE(failover, 0);
  EXPECT_NE(failover, home);
  lb.SetDraining(home, false);
  EXPECT_EQ(lb.Route(session), home);  // sessions return after the drain
}

TEST(LoadBalancerTest, ConsistentHashSpreadsSessions) {
  LoadBalancer lb({.strategy = "consistent_hash", .num_machines = 8,
                   .virtual_nodes = 64});
  std::vector<int> hits(8, 0);
  for (uint64_t s = 0; s < 4096; ++s) {
    const int m = lb.Route(s);
    ASSERT_GE(m, 0);
    ++hits[static_cast<size_t>(m)];
  }
  for (int m = 0; m < 8; ++m) {
    EXPECT_GT(hits[static_cast<size_t>(m)], 0) << "machine " << m << " owns no keys";
  }
}

// ---- Cluster determinism ---------------------------------------------------

constexpr char kFleetSpec[] = R"json({
  "name": "fleet_unit",
  "seed": 7,
  "warmup_ms": 2, "measure_ms": 10, "drain_ms": 5,
  "topology": {"preset": "custom", "sockets": 1, "cores_per_socket": 2, "smt": 2, "cores_per_ccx": 2},
  "policy": {"kind": "shinjuku", "timeslice_us": 30},
  "enclave": {"cpu_first": 1},
  "workload": {
    "kind": "request_service", "num_workers": 8,
    "service": {"model": "exponential", "mean_us": 60},
    "phases": [{"duration_ms": 17, "qps": 30000}]
  },
  "fleet": {
    "machines": 4, "sessions": 64, "rpc_fanout": 2,
    "balancer": {"policy": "least_loaded", "shed_outstanding": 32}
  }
})json";

scenario::ScenarioSpec ParseSpec(const char* json) {
  std::string error;
  std::optional<scenario::ScenarioSpec> spec = scenario::ScenarioSpec::Parse(json, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return *spec;
}

TEST(ClusterTest, FleetRunsAndCompletesCrossMachineRpcs) {
  const scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  const scenario::ScenarioResult result = scenario::RunScenario(spec);
  EXPECT_GT(result.exact.at("generated"), 0);
  EXPECT_GT(result.exact.at("completed"), 0);
  // Every arrival fans out to a root plus one leaf RPC.
  EXPECT_GT(result.exact.at("rpcs"), result.exact.at("completed"));
  EXPECT_GT(result.exact.at("net_messages"), 0);
  EXPECT_EQ(result.exact.at("invariants_ok"), 1);
}

TEST(ClusterTest, ResultIsByteIdenticalSerialVsJobs) {
  const scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  const std::string serial = scenario::RenderGolden(
      scenario::RunScenario(spec, nullptr, /*jobs=*/1));
  for (int jobs : {2, 3, 8}) {
    EXPECT_EQ(serial,
              scenario::RenderGolden(scenario::RunScenario(spec, nullptr, jobs)))
        << "fleet result depends on --jobs=" << jobs;
  }
}

TEST(ClusterTest, RepeatedRunsAreByteIdentical) {
  const scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  const std::string first =
      scenario::RenderGolden(scenario::RunScenario(spec, nullptr, 4));
  const std::string second =
      scenario::RenderGolden(scenario::RunScenario(spec, nullptr, 4));
  EXPECT_EQ(first, second);
}

TEST(ClusterTest, StatsMergeAcrossMachinesMatchesSerial) {
  const scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  StatsRegistry serial_stats;
  StatsRegistry parallel_stats;
  scenario::RunScenario(spec, &serial_stats, 1);
  scenario::RunScenario(spec, &parallel_stats, 8);
  EXPECT_EQ(serial_stats.ToJson(), parallel_stats.ToJson());
}

TEST(ClusterTest, PartitionHealChaosLeavesInvariantsClean) {
  scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  // Partition two machines at staggered times mid-run, heal both before the
  // end. Roots routed to a parked machine stall until the heal; everything
  // must still drain cleanly, with every machine's invariants green.
  scenario::FleetEventSpec down0{4.0, "link_down", 1};
  scenario::FleetEventSpec up0{7.0, "link_up", 1};
  scenario::FleetEventSpec down1{6.0, "link_down", 2};
  scenario::FleetEventSpec up1{9.0, "link_up", 2};
  spec.fleet->plan = {down0, up0, down1, up1};

  const scenario::ScenarioResult result = scenario::RunScenario(spec, nullptr, 4);
  EXPECT_GT(result.exact.at("net_parked"), 0) << "partition never parked a message";
  EXPECT_EQ(result.exact.at("invariants_ok"), 1);
  EXPECT_EQ(result.exact.at("invariant_violations"), 0);
  EXPECT_GT(result.exact.at("completed"), 0);

  // Chaos keeps the determinism contract too.
  const std::string again =
      scenario::RenderGolden(scenario::RunScenario(spec, nullptr, 1));
  EXPECT_EQ(again, scenario::RenderGolden(scenario::RunScenario(spec, nullptr, 8)));
}

TEST(ClusterTest, SingleMachineFleetIsValid) {
  scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  spec.fleet->machines = 1;
  spec.fleet->rpc_fanout = 1;
  const scenario::ScenarioResult result = scenario::RunScenario(spec);
  EXPECT_GT(result.exact.at("completed"), 0);
  EXPECT_EQ(result.exact.at("invariants_ok"), 1);
}

TEST(ClusterTest, LbDrainShiftsTrafficAway) {
  scenario::ScenarioSpec spec = ParseSpec(kFleetSpec);
  scenario::FleetEventSpec drain{2.0, "lb_drain", 3};
  spec.fleet->plan = {drain};
  const scenario::ScenarioResult result = scenario::RunScenario(spec);
  // Machine 3 only serves leaf RPCs (from machine 2's roots) after the
  // drain, while machine 1 serves both roots and leaves; the drained
  // machine's completion count must trail it.
  EXPECT_LT(result.exact.at("m3_completed"), result.exact.at("m1_completed"));
  EXPECT_EQ(result.exact.at("invariants_ok"), 1);
}

}  // namespace
}  // namespace fleet
}  // namespace gs
