// Tests for the work-stealing per-CPU policy and the §3.1 ASSOCIATE_QUEUE
// protocol it exercises.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/work_stealing.h"
#include "tests/test_util.h"

namespace gs {
namespace {

class WorkStealingTest : public ::testing::Test {
 protected:
  void Build(int cpus) {
    machine_ = std::make_unique<Machine>(Topology::Make("t", 1, cpus, 1, cpus));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cpus));
    auto policy = std::make_unique<WorkStealingPolicy>();
    policy_ = policy.get();
    process_ = std::make_unique<AgentProcess>(&machine_->kernel(), machine_->ghost_class(),
                                              enclave_.get(), std::move(policy));
    process_->Start();
  }

  Task* Worker(const std::string& name, Duration burst, int repeats, Duration gap) {
    Task* t = machine_->kernel().CreateTask(name);
    enclave_->AddTask(t);
    Kernel* kernel = &machine_->kernel();
    EventLoop* loop_ptr = &machine_->loop();
    auto remaining = std::make_shared<int>(repeats);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    *loop = [kernel, loop_ptr, remaining, burst, gap, loop](Task* task) {
      if (--*remaining <= 0) {
        kernel->Exit(task);
        return;
      }
      kernel->Block(task);
      loop_ptr->ScheduleAfter(gap, [kernel, task, burst, loop] {
        kernel->StartBurst(task, burst, *loop);
        kernel->Wake(task);
      });
    };
    kernel->StartBurst(t, burst, *loop);
    kernel->Wake(t);
    return t;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<AgentProcess> process_;
  WorkStealingPolicy* policy_ = nullptr;
};

TEST_F(WorkStealingTest, RunsTasksToCompletion) {
  Build(4);
  std::vector<Task*> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(100), 5, Microseconds(30)));
  }
  machine_->RunFor(Milliseconds(50));
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name();
    EXPECT_EQ(t->total_runtime(), Microseconds(500)) << t->name();
  }
}

TEST_F(WorkStealingTest, IdleAgentStealsFromLoadedSibling) {
  Build(2);
  // Round-robin homing sends even-indexed tasks to one CPU and odd to the
  // other. Even tasks are heavy (4 x 3 ms), odd ones trivial, so the light
  // CPU's agent drains its queue and must steal the heavy CPU's backlog.
  std::vector<Task*> heavy, light;
  for (int i = 0; i < 8; ++i) {
    heavy.push_back(Worker("heavy" + std::to_string(i), Milliseconds(3), 4, Microseconds(10)));
    light.push_back(Worker("light" + std::to_string(i), Microseconds(50), 2, Microseconds(10)));
  }
  machine_->RunFor(Milliseconds(80));
  for (Task* t : heavy) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name();
  }
  for (Task* t : light) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name();
  }
  EXPECT_GT(policy_->steals(), 0u);
  // The heavy work (8 x 4 x 3 ms = 96 ms) finished in 80 ms: both CPUs
  // demonstrably shared it.
  EXPECT_GT(machine_->kernel().CpuBusyTime(0), Milliseconds(35));
  EXPECT_GT(machine_->kernel().CpuBusyTime(1), Milliseconds(35));
}

TEST_F(WorkStealingTest, ChurnWithStealsLosesNoWork) {
  Build(2);
  // Imbalanced mix with rapid block/wake cycles: steals and (timing
  // permitting) §3.1 pending-message association retries occur, and no task
  // or work may ever be lost.
  std::vector<Task*> tasks;
  for (int i = 0; i < 20; ++i) {
    const Duration burst = (i % 2 == 0) ? Milliseconds(1) : Microseconds(50);
    const int repeats = (i % 2 == 0) ? 20 : 10;
    tasks.push_back(Worker("w" + std::to_string(i), burst, repeats, Microseconds(5)));
  }
  machine_->RunFor(Milliseconds(400));
  for (size_t i = 0; i < tasks.size(); ++i) {
    const Duration burst = (i % 2 == 0) ? Milliseconds(1) : Microseconds(50);
    const int repeats = (i % 2 == 0) ? 20 : 10;
    EXPECT_EQ(tasks[i]->state(), TaskState::kDead) << tasks[i]->name();
    EXPECT_EQ(tasks[i]->total_runtime(), burst * repeats) << tasks[i]->name();
  }
  EXPECT_GT(policy_->steals(), 0u);
}

TEST_F(WorkStealingTest, StealRespectsAffinity) {
  Build(3);
  // A task pinned to CPU 0 can never be stolen by CPUs 1-2.
  Task* pinned = machine_->kernel().CreateTask("pinned");
  enclave_->AddTask(pinned);
  machine_->kernel().SetAffinity(pinned, CpuMask::Single(0));
  machine_->kernel().StartBurst(pinned, Milliseconds(5), [this](Task* t) {
    machine_->kernel().Exit(t);
  });
  machine_->kernel().Wake(pinned);
  machine_->RunFor(Milliseconds(20));
  EXPECT_EQ(pinned->state(), TaskState::kDead);
  EXPECT_EQ(pinned->last_cpu(), 0);
}

}  // namespace
}  // namespace gs
