// Unit tests for the discrete-event engine.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_loop.h"

namespace gs {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, EqualTimesFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id)) << "double cancel is a no-op";
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoopTest, CancelInvalidId) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(kInvalidEventId));
  EXPECT_FALSE(loop.Cancel(12345));
}

TEST(EventLoopTest, EventsMayScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(10, recurse);
    }
  };
  loop.ScheduleAfter(0, recurse);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    loop.ScheduleAt(t, [&] { ++count; });
  }
  loop.RunUntil(50);
  EXPECT_EQ(count, 5) << "events at exactly the deadline are included";
  EXPECT_EQ(loop.now(), 50);
  loop.RunUntil(200);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), 200) << "clock advances to the deadline even when idle";
}

TEST(EventLoopTest, RunOneReturnsFalseWhenEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.RunOne());
  loop.ScheduleAfter(1, [] {});
  EXPECT_TRUE(loop.RunOne());
  EXPECT_FALSE(loop.RunOne());
}

TEST(EventLoopTest, CancelDuringExecution) {
  EventLoop loop;
  bool second_ran = false;
  EventId second = kInvalidEventId;
  loop.ScheduleAt(10, [&] { loop.Cancel(second); });
  second = loop.ScheduleAt(20, [&] { second_ran = true; });
  loop.RunUntilIdle();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoopTest, CancelOfFiredIdFailsEvenAfterSlotReuse) {
  EventLoop loop;
  bool a_ran = false, b_ran = false;
  const EventId a = loop.ScheduleAt(10, [&] { a_ran = true; });
  loop.RunUntilIdle();
  EXPECT_TRUE(a_ran);
  EXPECT_FALSE(loop.Cancel(a)) << "fired id must be dead";
  // B reuses A's pooled slot; A's id must still be dead (generation bump).
  const EventId b = loop.ScheduleAt(20, [&] { b_ran = true; });
  EXPECT_FALSE(loop.Cancel(a)) << "stale id must not cancel the slot's new tenant";
  loop.RunUntilIdle();
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(loop.Cancel(b));
}

TEST(EventLoopTest, CancelInsideCallbackOfSameTimestampEvent) {
  // Both events sit in the same collected bucket; the first callback cancels
  // the second after it has already been pulled into the ready list.
  EventLoop loop;
  bool second_ran = false;
  EventId second = kInvalidEventId;
  loop.ScheduleAt(10, [&] { EXPECT_TRUE(loop.Cancel(second)); });
  second = loop.ScheduleAt(10, [&] { second_ran = true; });
  loop.RunUntilIdle();
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(loop.executed_count(), 1u);
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoopTest, SameTimestampFifoAcrossWheelLevels) {
  // Events landing in the same instant must fire in schedule order even when
  // they entered the wheel at different levels: the first is scheduled far
  // ahead (high level, cascades down), the second near (low level).
  EventLoop loop;
  std::vector<int> order;
  const Time target = 1 << 20;
  loop.ScheduleAt(target, [&] { order.push_back(0); });  // far: high level
  loop.RunUntil(target - 64);  // advance so the next insert is level 0/1
  loop.ScheduleAt(target, [&] { order.push_back(1); });  // near: low level
  loop.ScheduleAt(target, [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}))
      << "cascades must not reorder same-timestamp events";
}

TEST(EventLoopTest, ScheduleZeroDelayInsideCallbackFiresSameInstant) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(10, [&] {
    order.push_back(0);
    loop.ScheduleAfter(0, [&] { order.push_back(2); });  // after remaining t=10 work
  });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(11, [&] { order.push_back(3); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(loop.now(), 11);
}

TEST(EventLoopTest, PeriodicFiresAtExactPeriods) {
  EventLoop loop;
  std::vector<Time> fires;
  loop.SchedulePeriodic(/*initial_delay=*/7, /*period=*/10,
                        [&] { fires.push_back(loop.now()); });
  loop.RunUntil(40);
  EXPECT_EQ(fires, (std::vector<Time>{7, 17, 27, 37}));
  EXPECT_EQ(loop.pending_count(), 1u) << "periodic stays armed";
}

TEST(EventLoopTest, PeriodicIdStaysValidAcrossFirings) {
  EventLoop loop;
  int fires = 0;
  const EventId id = loop.SchedulePeriodic(5, 5, [&] { ++fires; });
  loop.RunUntil(23);
  EXPECT_EQ(fires, 4);
  EXPECT_TRUE(loop.Cancel(id)) << "the handle must survive re-arms";
  EXPECT_FALSE(loop.Cancel(id));
  loop.RunUntil(100);
  EXPECT_EQ(fires, 4);
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoopTest, PeriodicCancelInsideOwnCallbackStopsRearm) {
  EventLoop loop;
  int fires = 0;
  EventId id = kInvalidEventId;
  id = loop.SchedulePeriodic(5, 5, [&] {
    if (++fires == 3) {
      EXPECT_TRUE(loop.Cancel(id));
      EXPECT_FALSE(loop.Cancel(id)) << "second cancel while firing is a no-op";
    }
  });
  loop.RunUntil(1000);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, SchedulePeriodicAtAbsoluteFirstFire) {
  EventLoop loop;
  std::vector<Time> fires;
  loop.RunUntil(100);
  const EventId id =
      loop.SchedulePeriodicAt(150, 25, [&] { fires.push_back(loop.now()); });
  loop.RunUntil(210);
  EXPECT_EQ(fires, (std::vector<Time>{150, 175, 200}));
  EXPECT_TRUE(loop.Cancel(id));
}

TEST(EventLoopTest, CallbackCapturesReleasedAfterFire) {
  EventLoop loop;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  loop.ScheduleAt(10, [token] { (void)*token; });
  token.reset();
  EXPECT_FALSE(watch.expired()) << "the pending event keeps the capture alive";
  loop.RunUntilIdle();
  EXPECT_TRUE(watch.expired()) << "fired events must drop captures promptly";
}

TEST(EventLoopTest, CallbackCapturesReleasedOnCancel) {
  EventLoop loop;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventId id = loop.ScheduleAt(10, [token] { (void)*token; });
  token.reset();
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_TRUE(watch.expired()) << "cancelled events must drop captures promptly";
}

TEST(EventLoopTest, PendingCountTracksLiveEvents) {
  EventLoop loop;
  const EventId a = loop.ScheduleAfter(10, [] {});
  loop.ScheduleAfter(20, [] {});
  EXPECT_EQ(loop.pending_count(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending_count(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_EQ(loop.executed_count(), 1u);
}

}  // namespace
}  // namespace gs
