// Unit tests for the discrete-event engine.
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_loop.h"

namespace gs {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(30, [&] { order.push_back(3); });
  loop.ScheduleAt(10, [&] { order.push_back(1); });
  loop.ScheduleAt(20, [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, EqualTimesFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id)) << "double cancel is a no-op";
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending_count(), 0u);
}

TEST(EventLoopTest, CancelInvalidId) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(kInvalidEventId));
  EXPECT_FALSE(loop.Cancel(12345));
}

TEST(EventLoopTest, EventsMayScheduleEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(10, recurse);
    }
  };
  loop.ScheduleAfter(0, recurse);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), 40);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int count = 0;
  for (Time t = 10; t <= 100; t += 10) {
    loop.ScheduleAt(t, [&] { ++count; });
  }
  loop.RunUntil(50);
  EXPECT_EQ(count, 5) << "events at exactly the deadline are included";
  EXPECT_EQ(loop.now(), 50);
  loop.RunUntil(200);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), 200) << "clock advances to the deadline even when idle";
}

TEST(EventLoopTest, RunOneReturnsFalseWhenEmpty) {
  EventLoop loop;
  EXPECT_FALSE(loop.RunOne());
  loop.ScheduleAfter(1, [] {});
  EXPECT_TRUE(loop.RunOne());
  EXPECT_FALSE(loop.RunOne());
}

TEST(EventLoopTest, CancelDuringExecution) {
  EventLoop loop;
  bool second_ran = false;
  EventId second = kInvalidEventId;
  loop.ScheduleAt(10, [&] { loop.Cancel(second); });
  second = loop.ScheduleAt(20, [&] { second_ran = true; });
  loop.RunUntilIdle();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoopTest, PendingCountTracksLiveEvents) {
  EventLoop loop;
  const EventId a = loop.ScheduleAfter(10, [] {});
  loop.ScheduleAfter(20, [] {});
  EXPECT_EQ(loop.pending_count(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.pending_count(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_EQ(loop.executed_count(), 1u);
}

}  // namespace
}  // namespace gs
