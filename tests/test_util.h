// Shared helpers for simulation tests.
#ifndef GHOST_SIM_TESTS_TEST_UTIL_H_
#define GHOST_SIM_TESTS_TEST_UTIL_H_

#include <functional>

#include "src/ghost/machine.h"

namespace gs {

// Creates a task that runs `burst` once and then exits.
inline Task* SpawnOneShot(Kernel& kernel, const std::string& name, Duration burst,
                          SchedClass* cls = nullptr,
                          std::function<void(Task*)> on_done = nullptr) {
  Task* task = kernel.CreateTask(name, cls);
  kernel.StartBurst(task, burst, [&kernel, on_done](Task* t) {
    if (on_done) {
      on_done(t);
    }
    kernel.Exit(t);
  });
  kernel.Wake(task);
  return task;
}

// Creates a CPU hog: runs forever in `chunk`-sized bursts.
inline Task* SpawnHog(Kernel& kernel, const std::string& name, SchedClass* cls = nullptr,
                      Duration chunk = Milliseconds(10)) {
  Task* task = kernel.CreateTask(name, cls);
  auto loop = std::make_shared<std::function<void(Task*)>>();
  *loop = [&kernel, chunk, loop](Task* t) { kernel.StartBurst(t, chunk, *loop); };
  kernel.StartBurst(task, chunk, *loop);
  kernel.Wake(task);
  return task;
}

}  // namespace gs

#endif  // GHOST_SIM_TESTS_TEST_UTIL_H_
