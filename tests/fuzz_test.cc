// Randomized stress test of the whole stack: a chaos driver applies random
// operations (spawn, wake/block churn, affinity flips, nice changes, enclave
// remove/re-add churn, mid-run agent upgrades) against each stock policy,
// with the invariant checker scanning continuously and global invariants
// asserted afterwards — no lost tasks, exact work conservation, consistent
// enclave bookkeeping.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/base/rng.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/policies/search.h"
#include "src/policies/shinjuku.h"
#include "src/policies/work_stealing.h"
#include "src/verify/invariants.h"
#include "tests/test_util.h"

namespace gs {
namespace {

struct ChaosParams {
  // 0 per-cpu, 1 centralized, 2 centralized+slice, 3 work-stealing,
  // 4 shinjuku, 5 search
  int policy;
  uint64_t seed;
};

std::unique_ptr<Policy> MakePolicy(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<PerCpuFifoPolicy>();
    case 2: {
      CentralizedFifoPolicy::Options options;
      options.preemption_timeslice = Microseconds(50);
      return std::make_unique<CentralizedFifoPolicy>(options);
    }
    case 3:
      return std::make_unique<WorkStealingPolicy>();
    case 4:
      return MakeShinjukuPolicy(Microseconds(30));
    case 5:
      return std::make_unique<SearchPolicy>();
    default:
      return std::make_unique<CentralizedFifoPolicy>();
  }
}

class ChaosTest : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(ChaosTest, InvariantsHoldUnderRandomOperations) {
  const ChaosParams params = GetParam();
  Rng rng(params.seed);
  Machine m(Topology::Make("chaos", 2, 4, 2, 2));  // 16 CPUs, 2 sockets, CCXs
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  // Held through a shared handle so the upgrade chaos op can swap in a
  // replacement process mid-run (§3.4).
  auto process = std::make_shared<std::unique_ptr<AgentProcess>>(
      std::make_unique<AgentProcess>(&m.kernel(), m.ghost_class(), enclave.get(),
                                     MakePolicy(params.policy)));
  (*process)->Start();

  InvariantChecker checker(&m.kernel());
  checker.Watch(enclave.get());
  checker.Start();

  struct WorkerState {
    Task* task = nullptr;
    Duration expected_work = 0;
  };
  auto workers = std::make_shared<std::vector<WorkerState>>();
  Kernel* kernel = &m.kernel();
  EventLoop* loop = &m.loop();

  // Spawn workers with random burst chains.
  auto spawn = [&](int index) {
    Task* t = kernel->CreateTask("chaos" + std::to_string(index));
    enclave->AddTask(t);
    const int repeats = 3 + static_cast<int>(rng.NextBounded(8));
    const auto burst = static_cast<Duration>(5'000 + rng.NextBounded(300'000));
    const auto gap = static_cast<Duration>(1'000 + rng.NextBounded(50'000));
    workers->push_back({t, burst * repeats});
    auto remaining = std::make_shared<int>(repeats);
    auto chain = std::make_shared<std::function<void(Task*)>>();
    *chain = [kernel, loop, remaining, burst, gap, chain](Task* task) {
      if (--*remaining <= 0) {
        kernel->Exit(task);
        return;
      }
      kernel->Block(task);
      loop->ScheduleAfter(gap, [kernel, task, burst, chain] {
        kernel->StartBurst(task, burst, *chain);
        kernel->Wake(task);
      });
    };
    kernel->StartBurst(t, burst, *chain);
    kernel->Wake(t);
  };
  for (int i = 0; i < 24; ++i) {
    spawn(i);
  }

  // Chaos operations sprinkled through the first 50 ms.
  Enclave* enc = enclave.get();
  const int policy_kind = params.policy;
  for (int op = 0; op < 72; ++op) {
    const Time when = static_cast<Time>(rng.NextBounded(50'000'000));
    const uint64_t kind = rng.NextBounded(5);
    const size_t victim = rng.NextBounded(24);
    const uint64_t arg = rng.Next();
    loop->ScheduleAt(when, [workers, victim, kind, arg, kernel, loop, enc, process,
                            policy_kind, &m] {
      Task* task = (*workers)[victim].task;
      if (task->state() == TaskState::kDead) {
        return;
      }
      switch (kind) {
        case 0: {  // affinity flip: one random socket, or everything
          const int numa = static_cast<int>(arg % 3);
          if (numa < 2) {
            kernel->SetAffinity(task, m.kernel().topology().NumaMask(numa));
          } else {
            kernel->SetAffinity(task, m.kernel().topology().AllCpus());
          }
          break;
        }
        case 1:
          kernel->SetNice(task, static_cast<int>(arg % 40) - 20);
          break;
        case 2:
          // CFS interference: a short foreign burst lands somewhere.
          SpawnOneShot(*kernel, "intruder", Microseconds(200));
          break;
        case 3: {
          // Enclave churn: yank the thread out to CFS, re-add it shortly
          // after (if it survives that long). Sequence numbers restart.
          if (enc->destroyed() || task->ghost_state() == nullptr) {
            return;
          }
          enc->RemoveTask(task);
          const Duration back_in = static_cast<Duration>(50'000 + arg % 500'000);
          loop->ScheduleAfter(back_in, [enc, task] {
            if (!enc->destroyed() && task->state() != TaskState::kDead &&
                task->ghost_state() == nullptr) {
              enc->AddTask(task);
            }
          });
          break;
        }
        case 4:
          // In-place agent upgrade (§3.4): the old process exits, a fresh
          // one attaches and restores the policy view from the kernel dump.
          if (enc->destroyed()) {
            return;
          }
          (*process)->Shutdown();
          *process = std::make_unique<AgentProcess>(kernel, m.ghost_class(), enc,
                                                    MakePolicy(policy_kind));
          (*process)->Start();
          break;
      }
    });
  }

  m.RunFor(Milliseconds(400));

  // Invariants: every worker finished with exactly its demanded work.
  for (const WorkerState& w : *workers) {
    EXPECT_EQ(w.task->state(), TaskState::kDead) << w.task->name();
    EXPECT_GE(w.task->total_runtime(), w.expected_work) << w.task->name();
    // Wall time exceeds work only via SMT contention (factor 0.7).
    EXPECT_LE(static_cast<double>(w.task->total_runtime()),
              static_cast<double>(w.expected_work) / 0.7 + 2000.0)
        << w.task->name();
  }
  EXPECT_EQ(enclave->num_tasks(), 0) << "all ghOSt threads reaped";
  EXPECT_FALSE(enclave->destroyed());
  EXPECT_TRUE(checker.ok()) << checker.Report();
  EXPECT_GT(checker.scans(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ChaosTest,
    ::testing::Values(ChaosParams{0, 101}, ChaosParams{0, 202}, ChaosParams{1, 303},
                      ChaosParams{1, 404}, ChaosParams{2, 505}, ChaosParams{2, 606},
                      ChaosParams{3, 707}, ChaosParams{3, 808}, ChaosParams{4, 909},
                      ChaosParams{4, 1010}, ChaosParams{5, 1111}, ChaosParams{5, 1212}));

}  // namespace
}  // namespace gs
