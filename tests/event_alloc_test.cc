// Steady-state allocation test for the event engine.
//
// The timing wheel pools event slots and InlineCallback stores captures
// inline, so once the slab and ready list are warm, scheduling / firing /
// cancelling events must not touch the heap at all. This test overrides
// global operator new/delete with counting shims and drives >1M events
// through a warmed loop, requiring an allocation delta of exactly zero.
//
// Runs the workload the engine sees in production: staggered periodic ticks
// (one per simulated CPU) whose callbacks schedule oneshot events, plus a
// schedule+cancel pair to exercise the free list.
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_loop.h"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }

namespace gs {
namespace {

TEST(EventAllocTest, SteadyStateIsAllocationFree) {
  EventLoop loop;
  constexpr int kCpus = 64;
  constexpr Duration kPeriod = 1000;  // 1us ticks

  struct TickState {
    EventLoop* loop;
    EventId pending = kInvalidEventId;
    uint64_t fired = 0;
  };
  std::vector<TickState> cpus(kCpus, TickState{&loop});
  for (int i = 0; i < kCpus; ++i) {
    // Stagger phases like the kernel's per-CPU tick.
    TickState* st = &cpus[i];
    loop.SchedulePeriodic(1 + (kPeriod * i) / kCpus, kPeriod, [st] {
      ++st->fired;
      // A fire-and-forget oneshot...
      st->loop->ScheduleAfter(kPeriod / 2, [st] { ++st->fired; });
      // ...and a schedule+cancel pair to exercise the slot free list.
      if (st->pending != kInvalidEventId) {
        st->loop->Cancel(st->pending);
      }
      st->pending = st->loop->ScheduleAfter(10 * kPeriod, [st] { ++st->fired; });
    });
  }

  // Warm up: grow the slab, the ready list, and every wheel bucket the
  // steady state will touch.
  loop.RunUntil(50 * kPeriod);
  const uint64_t warm_executed = loop.executed_count();
  ASSERT_GT(warm_executed, 1000u);

  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t frees_before = g_frees.load(std::memory_order_relaxed);

  // >1M events: 64 periodics + 64 oneshots per period, ~8200 periods.
  loop.RunUntil(50 * kPeriod + 8200 * kPeriod);
  const uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t frees = g_frees.load(std::memory_order_relaxed) - frees_before;

  const uint64_t executed = loop.executed_count() - warm_executed;
  EXPECT_GT(executed, 1000000u) << "workload must cover >1M events";
  EXPECT_EQ(allocs, 0u) << "steady-state events must not allocate";
  EXPECT_EQ(frees, 0u) << "steady-state events must not free";
}

}  // namespace
}  // namespace gs
