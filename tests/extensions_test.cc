// Tests for the §5 / §4.3 extension features: tick-less mode and
// shared-memory scheduling hints.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "tests/test_util.h"

namespace gs {
namespace {

TEST(TicklessTest, DisabledCpusReceiveNoTicks) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::Single(1));
  enclave->SetTickless(true);
  m.RunFor(Milliseconds(50));
  EXPECT_EQ(m.kernel().ticks_delivered(1), 0u);
  EXPECT_GT(m.kernel().ticks_delivered(0), 40u);
  // Re-enabling resumes delivery.
  enclave->SetTickless(false);
  m.RunFor(Milliseconds(50));
  EXPECT_GT(m.kernel().ticks_delivered(1), 40u);
}

TEST(TicklessTest, TickCostStealsGuestTime) {
  CostModel cost;
  cost.tick_cost = Microseconds(10);
  Machine m(Topology::Make("t", 1, 1, 1, 1), cost);
  Time done = -1;
  Task* t = m.kernel().CreateTask("guest");
  m.kernel().StartBurst(t, Milliseconds(10), [&](Task* task) {
    done = m.now();
    m.kernel().Exit(task);
  });
  m.kernel().Wake(t);
  m.RunFor(Milliseconds(50));
  // ~10 ticks during a 10 ms burst, each stealing 10 us.
  ASSERT_GE(done, 0);
  EXPECT_GT(done, Milliseconds(10) + Microseconds(80));
  EXPECT_LT(done, Milliseconds(10) + Microseconds(130));
}

TEST(TicklessTest, DestroyRestoresTicks) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  enclave->SetTickless(true);
  EXPECT_FALSE(m.kernel().tick_enabled(0));
  enclave->Destroy();
  EXPECT_TRUE(m.kernel().tick_enabled(0));
  EXPECT_TRUE(m.kernel().tick_enabled(1));
}

TEST(TicklessTest, NoSliceEnforcementWithoutTicks) {
  // Two CFS hogs on one tickless CPU: without the tick there is no slice
  // expiry, so the first one runs unboundedly (exactly why tickless is only
  // safe when an agent supervises the CPU).
  Machine m(Topology::Make("t", 1, 1, 1, 1));
  m.kernel().SetTickEnabled(0, false);
  Task* a = SpawnHog(m.kernel(), "a", nullptr, Milliseconds(1));
  Task* b = SpawnHog(m.kernel(), "b", nullptr, Milliseconds(1));
  m.RunFor(Milliseconds(100));
  const Duration max_rt = std::max(a->total_runtime(), b->total_runtime());
  const Duration min_rt = std::min(a->total_runtime(), b->total_runtime());
  EXPECT_GT(max_rt, Milliseconds(95));
  EXPECT_LT(min_rt, Milliseconds(5));
}

TEST(HintsTest, RoundTripThroughSharedMemory) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  Task* t = m.kernel().CreateTask("worker");
  enclave->AddTask(t);
  EXPECT_EQ(enclave->Hint(t->tid()), 0u);
  enclave->SetHint(t->tid(), 0xfeedULL);
  EXPECT_EQ(enclave->Hint(t->tid()), 0xfeedULL);
  // Unknown tids read as 0 and writes are dropped.
  enclave->SetHint(424242, 7);
  EXPECT_EQ(enclave->Hint(424242), 0u);
}

TEST(HintsTest, PolicyCanReadHints) {
  // A tiny policy that orders dispatch by hint value (lower = first).
  class HintPolicy : public Policy {
   public:
    const char* name() const override { return "hint"; }
    void Attached(AgentProcess*, Enclave* enclave, Kernel*) override {
      enclave_ = enclave;
    }
    AgentAction RunAgent(AgentContext& ctx) override {
      if (ctx.agent_cpu() != enclave_->cpus().First()) {
        return AgentAction::kBlock;
      }
      std::vector<Message> msgs;
      ctx.Drain(enclave_->default_queue(), &msgs);
      for (const Message& msg : msgs) {
        if (msg.type == MessageType::kTaskWakeup ||
            (msg.type == MessageType::kTaskNew && msg.runnable)) {
          waiting_.push_back(msg.tid);
        }
      }
      std::sort(waiting_.begin(), waiting_.end(), [&](int64_t a, int64_t b) {
        return ctx.ReadHint(a) < ctx.ReadHint(b);
      });
      const CpuMask avail = ctx.AvailableCpus();
      bool progress = false;
      if (!waiting_.empty() && !avail.Empty()) {
        Transaction txn = AgentContext::MakeTxn(waiting_.front(), avail.First());
        Transaction* ptr = &txn;
        ctx.Commit(ptr);
        if (txn.committed()) {
          order.push_back(waiting_.front());
          waiting_.erase(waiting_.begin());
          progress = true;
        }
      }
      return progress ? AgentAction::kRunAgain : AgentAction::kPollWait;
    }
    std::vector<int64_t> order;

   private:
    Enclave* enclave_ = nullptr;
    std::vector<int64_t> waiting_;
  };

  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  auto policy = std::make_unique<HintPolicy>();
  HintPolicy* policy_ptr = policy.get();
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
  process.Start();

  // Three workers with hints 3, 1, 2 — the policy must run them 1, 2, 3.
  std::vector<Task*> tasks;
  const uint64_t hints[] = {3, 1, 2};
  for (int i = 0; i < 3; ++i) {
    Task* t = m.kernel().CreateTask("w" + std::to_string(i));
    enclave->AddTask(t);
    enclave->SetHint(t->tid(), hints[i]);
    m.kernel().StartBurst(t, Microseconds(100), [&m](Task* task) { m.kernel().Exit(task); });
    tasks.push_back(t);
  }
  for (Task* t : tasks) {
    m.kernel().Wake(t);
  }
  m.RunFor(Milliseconds(10));
  ASSERT_EQ(policy_ptr->order.size(), 3u);
  EXPECT_EQ(policy_ptr->order[0], tasks[1]->tid());
  EXPECT_EQ(policy_ptr->order[1], tasks[2]->tid());
  EXPECT_EQ(policy_ptr->order[2], tasks[0]->tid());
}

}  // namespace
}  // namespace gs
