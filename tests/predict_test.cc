// Tests for the src/predict/ online estimators: the contract the predictive
// policies rely on — deterministic predictions, convergence on stationary
// mixes (train/eval split), bounded error after a distribution shift, and
// byte-identical behavior regardless of how many BatchRunner jobs replay the
// same observation stream.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/predict/estimators.h"
#include "src/sim/batch_runner.h"

namespace gs {
namespace predict {
namespace {

// --- Ewma ----------------------------------------------------------------------

TEST(EwmaTest, FirstSampleInitializesDirectly) {
  Ewma e(0.25);
  EXPECT_FALSE(e.initialized());
  e.Observe(100);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 100);
}

TEST(EwmaTest, ConvergesToStationaryMean) {
  Ewma e(0.25);
  for (int i = 0; i < 100; ++i) {
    e.Observe(42);
  }
  EXPECT_DOUBLE_EQ(e.value(), 42);

  // After a level shift the estimate tracks the new level geometrically:
  // within ~17 samples (log(0.01)/log(0.75)) it is inside 1% of the range.
  for (int i = 0; i < 17; ++i) {
    e.Observe(142);
  }
  EXPECT_GT(e.value(), 141);
  EXPECT_LE(e.value(), 142);
}

// --- ServiceTimePredictor -------------------------------------------------------

TEST(ServiceTimePredictorTest, ColdStartReturnsDefault) {
  ServiceTimePredictor p({.default_prediction = Microseconds(7)});
  EXPECT_EQ(p.Predict(1), Microseconds(7));
  EXPECT_EQ(p.tracked(), 0u);
}

TEST(ServiceTimePredictorTest, ClassOfIsLogarithmic) {
  ServiceTimePredictor p;
  EXPECT_EQ(p.ClassOf(Microseconds(0)), 0);
  EXPECT_EQ(p.ClassOf(Microseconds(1)), 1);
  EXPECT_EQ(p.ClassOf(Microseconds(10)), 4);
  EXPECT_EQ(p.ClassOf(Microseconds(100)), 7);
  EXPECT_EQ(p.ClassOf(Milliseconds(10)), 14);
  // Saturates at the top class rather than indexing out of range.
  EXPECT_EQ(p.ClassOf(Seconds(100)), 15);
}

TEST(ServiceTimePredictorTest, ConvergesOnStationaryFixedService) {
  ServiceTimePredictor p;
  for (int i = 0; i < 50; ++i) {
    p.Observe(5, Microseconds(10));
  }
  EXPECT_EQ(p.Predict(5), Microseconds(10));
}

TEST(ServiceTimePredictorTest, LearnsAlternatingPatternEwmaCannot) {
  // A thread strictly alternating 10 us and 10 ms requests: the Markov
  // transition matrix pins short -> long -> short, so each prediction is the
  // *other* mode — a plain EWMA would smear both modes into ~5 ms and be
  // wrong for every request.
  ServiceTimePredictor p;
  for (int i = 0; i < 40; ++i) {
    p.Observe(9, i % 2 == 0 ? Microseconds(10) : Milliseconds(10));
  }
  // Last observation was long (i=39), so the next is predicted short...
  EXPECT_LT(p.Predict(9), Microseconds(20));
  // ...and after one more short, the next is predicted long.
  p.Observe(9, Microseconds(10));
  EXPECT_GT(p.Predict(9), Milliseconds(5));
}

TEST(ServiceTimePredictorTest, TrainEvalSplitOnStationaryMix) {
  // Train on the first 2000 draws of a stationary bimodal mix, then
  // evaluate on the next 500 without further training. The mix is heavily
  // short-dominated (the Fig 6 shape), so the converged predictor must
  // classify the overwhelming majority of eval draws on the correct side of
  // the 100 us threshold.
  constexpr Duration kShort = Microseconds(10);
  constexpr Duration kLong = Milliseconds(10);
  constexpr Duration kThreshold = Microseconds(100);
  ServiceTimePredictor p;
  Rng rng(42);
  auto draw = [&] { return rng.NextBernoulli(0.05) ? kLong : kShort; };
  for (int i = 0; i < 2000; ++i) {
    p.Observe(3, draw());
  }
  int correct = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    const Duration actual = draw();
    const Duration predicted = p.Predict(3);
    correct += (predicted >= kThreshold) == (actual >= kThreshold);
    ++total;
    p.Observe(3, actual);  // online: eval then train, like the policy does
  }
  // An iid 5%-long mix caps any single-class predictor at 95% accuracy;
  // require most of that headroom.
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST(ServiceTimePredictorTest, BoundedErrorAfterDistributionShift) {
  // The workload shifts from 10 us requests to 400 us requests. The
  // predictor must re-converge: within 20 post-shift observations the
  // prediction lands within 25% of the new mode, and stays there.
  ServiceTimePredictor p;
  for (int i = 0; i < 200; ++i) {
    p.Observe(4, Microseconds(10));
  }
  EXPECT_EQ(p.Predict(4), Microseconds(10));
  for (int i = 0; i < 20; ++i) {
    p.Observe(4, Microseconds(400));
  }
  for (int i = 0; i < 50; ++i) {
    p.Observe(4, Microseconds(400));
    const double err =
        std::abs(ToSeconds(p.Predict(4)) - 400e-6) / 400e-6;
    EXPECT_LT(err, 0.25) << "observation " << i << " after shift";
  }
}

TEST(ServiceTimePredictorTest, ForgetDropsState) {
  ServiceTimePredictor p;
  p.Observe(11, Microseconds(50));
  EXPECT_EQ(p.tracked(), 1u);
  p.Forget(11);
  EXPECT_EQ(p.tracked(), 0u);
  EXPECT_EQ(p.Predict(11), ServiceTimePredictor::Options().default_prediction);
}

TEST(ServiceTimePredictorTest, TidsAreIndependent) {
  ServiceTimePredictor p;
  for (int i = 0; i < 20; ++i) {
    p.Observe(1, Microseconds(10));
    p.Observe(2, Milliseconds(10));
  }
  EXPECT_LT(p.Predict(1), Microseconds(100));
  EXPECT_GT(p.Predict(2), Milliseconds(1));
}

// --- WakeupAffinityPredictor ----------------------------------------------------

TEST(WakeupAffinityPredictorTest, ColdStartIsUnknown) {
  WakeupAffinityPredictor p;
  EXPECT_EQ(p.Predict(1), -1);
}

TEST(WakeupAffinityPredictorTest, PredictsModalNode) {
  WakeupAffinityPredictor p;
  for (int i = 0; i < 8; ++i) {
    p.Observe(1, 3);
  }
  p.Observe(1, 5);
  EXPECT_EQ(p.Predict(1), 3);
}

TEST(WakeupAffinityPredictorTest, DecayAdaptsToNewHome) {
  // A thread lives on node 2 for a long time, then migrates to node 6. With
  // halving at decay_limit the old home's lead decays; the new home takes
  // over within ~2x the old count rather than needing to outnumber the
  // whole history.
  WakeupAffinityPredictor p({.decay_limit = 16});
  for (int i = 0; i < 100; ++i) {
    p.Observe(1, 2);
  }
  EXPECT_EQ(p.Predict(1), 2);
  for (int i = 0; i < 32; ++i) {
    p.Observe(1, 6);
  }
  EXPECT_EQ(p.Predict(1), 6);
}

// --- Determinism across BatchRunner jobs ----------------------------------------

// Replays an identical observation stream into a fresh predictor and
// serializes every prediction along the way. The digest depends only on the
// stream, never on scheduling, so any two replays must match byte for byte.
std::string PredictionDigest(uint64_t seed) {
  ServiceTimePredictor service;
  WakeupAffinityPredictor affinity;
  Rng rng(seed);
  std::string digest;
  for (int i = 0; i < 3000; ++i) {
    const int64_t tid = static_cast<int64_t>(rng.NextBounded(16));
    const Duration s = rng.NextBernoulli(0.1) ? Milliseconds(1)
                                              : Microseconds(1 + rng.NextBounded(50));
    service.Observe(tid, s);
    affinity.Observe(tid, static_cast<int>(rng.NextBounded(8)));
    if (i % 7 == 0) {
      digest += std::to_string(service.Predict(tid)) + ":" +
                std::to_string(affinity.Predict(tid)) + ";";
    }
  }
  return digest;
}

TEST(PredictDeterminismTest, ByteIdenticalAcrossJobs) {
  // 8 replays of the same 4 seeds, fanned across 1 worker vs 8 workers:
  // every corresponding digest must be identical. This is the property that
  // keeps BENCH_predict.json and the scenario goldens --jobs-independent.
  const auto digest_fn = [](int k) { return PredictionDigest(100 + k % 4); };
  const std::vector<std::string> serial =
      BatchRunner(1).Map<std::string>(8, digest_fn);
  const std::vector<std::string> parallel =
      BatchRunner(8).Map<std::string>(8, digest_fn);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "replay " << i;
    EXPECT_EQ(serial[i], serial[i % 4]) << "same seed, same digest";
  }
  EXPECT_NE(serial[0], serial[1]);  // different seeds actually differ
}

}  // namespace
}  // namespace predict
}  // namespace gs
