// Policy-fuzzer tests: deterministic config generation, a seams-off smoke
// sweep that must stay clean, replay-file round-tripping, and — the point of
// the whole battery — one regression per mechanism bug the fuzzer surfaced,
// each pinned by its checked-in shrunken replay (tests/replays/): the replay
// must reproduce the violation with the bug's test seam reopened and come
// back clean on the fixed code.
#include "src/verify/policy_fuzzer.h"

#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace gs {
namespace {

std::string ReplayPath(const char* name) {
  return std::string(GHOST_SIM_REPLAYS_DIR) + "/" + name;
}

TEST(HostileConfigTest, SameSeedSameConfig) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    const HostileConfig a = GenerateHostileConfig(seed);
    const HostileConfig b = GenerateHostileConfig(seed);
    EXPECT_EQ(a.seed, seed);
    EXPECT_EQ(a.drop_wakeup_pct, b.drop_wakeup_pct);
    EXPECT_EQ(a.drop_new_pct, b.drop_new_pct);
    EXPECT_EQ(a.stale_cpu_pct, b.stale_cpu_pct);
    EXPECT_EQ(a.remote_pct, b.remote_pct);
    EXPECT_EQ(a.idle_commit_pct, b.idle_commit_pct);
    EXPECT_EQ(a.conflict_group_pct, b.conflict_group_pct);
    EXPECT_EQ(a.never_yield_pct, b.never_yield_pct);
    EXPECT_EQ(a.block_with_work_pct, b.block_with_work_pct);
    EXPECT_EQ(a.stall_window, b.stall_window);
    EXPECT_EQ(a.crash_agent, b.crash_agent);
  }
}

TEST(HostileConfigTest, AtLeastOneHostileKnobIsAlwaysActive) {
  for (uint64_t seed = 1; seed <= 256; ++seed) {
    const HostileConfig c = GenerateHostileConfig(seed);
    EXPECT_TRUE(c.drop_wakeup_pct > 0 || c.drop_new_pct > 0 ||
                c.stale_cpu_pct > 0 || c.remote_pct > 0 ||
                c.idle_commit_pct > 0 || c.conflict_group_pct > 0 ||
                c.never_yield_pct > 0 || c.block_with_work_pct > 0 ||
                c.stall_window || c.crash_agent)
        << "seed " << seed << " generated a benign policy";
  }
}

TEST(PolicyFuzzerTest, SmokeSweepIsCleanWithoutSeams) {
  FuzzSweepOptions options;
  options.cases = 30;
  options.schedules_per_case = 1;
  const FuzzSweepResult result = RunFuzzSweep(options);
  EXPECT_EQ(result.cases_run, 30);
  EXPECT_GE(result.total_schedules, 30u);
  ASSERT_TRUE(result.violations.empty())
      << "seed " << result.violations[0].config.seed << ": "
      << result.violations[0].violation;
}

TEST(PolicyFuzzerTest, SweepIsDeterministic) {
  FuzzSweepOptions options;
  options.cases = 10;
  options.schedules_per_case = 1;
  const FuzzSweepResult a = RunFuzzSweep(options);
  const FuzzSweepResult b = RunFuzzSweep(options);
  EXPECT_EQ(a.total_schedules, b.total_schedules);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(PolicyFuzzerTest, ReplayFileRoundTrips) {
  FuzzCaseResult result;
  result.shrunk = GenerateHostileConfig(7);
  result.violation = "some violation text";
  result.trace = {2, 0, 1, 3};
  FuzzSeams seams;
  seams.leak_teardown_cpu_state = true;
  seams.deferred_exit_teardown = true;
  const std::string path = ::testing::TempDir() + "roundtrip.replay";
  ASSERT_TRUE(SaveFuzzReplay(path, result, seams));

  HostileConfig config;
  FuzzSeams loaded;
  Explorer::ChoiceTrace trace;
  std::string violation;
  ASSERT_TRUE(LoadFuzzReplay(path, &config, &loaded, &trace, &violation));
  EXPECT_EQ(config.seed, result.shrunk.seed);
  EXPECT_EQ(config.drop_wakeup_pct, result.shrunk.drop_wakeup_pct);
  EXPECT_EQ(config.remote_pct, result.shrunk.remote_pct);
  EXPECT_EQ(config.conflict_group_pct, result.shrunk.conflict_group_pct);
  EXPECT_EQ(config.stall_window, result.shrunk.stall_window);
  EXPECT_EQ(config.crash_agent, result.shrunk.crash_agent);
  EXPECT_FALSE(loaded.unguarded_commit_ipis);
  EXPECT_TRUE(loaded.leak_teardown_cpu_state);
  EXPECT_TRUE(loaded.deferred_exit_teardown);
  EXPECT_EQ(trace, result.trace);
  EXPECT_EQ(violation, "some violation text");
}

TEST(PolicyFuzzerTest, LoadRejectsWrongHeader) {
  const std::string path = ::testing::TempDir() + "bad.replay";
  {
    std::ofstream out(path);
    out << "not a replay\n";
  }
  HostileConfig config;
  FuzzSeams seams;
  Explorer::ChoiceTrace trace;
  std::string violation;
  EXPECT_FALSE(LoadFuzzReplay(path, &config, &seams, &trace, &violation));
  EXPECT_FALSE(LoadFuzzReplay("/nonexistent/x.replay", &config, &seams, &trace,
                              &violation));
}

// ---- Checked-in regressions -------------------------------------------------
// One parameter per mechanism bug the fuzz battery surfaced. Each replay was
// shrunk and saved by the fuzzer itself; the `seams:` line reopens exactly
// the bug it pinned.
class FuzzReplayRegressionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzReplayRegressionTest, ReplayReproducesWithSeamAndIsFixedWithoutIt) {
  HostileConfig config;
  FuzzSeams seams;
  Explorer::ChoiceTrace trace;
  std::string expected;
  ASSERT_TRUE(LoadFuzzReplay(ReplayPath(GetParam()), &config, &seams, &trace,
                             &expected))
      << "cannot load " << ReplayPath(GetParam());
  ASSERT_TRUE(seams.unguarded_commit_ipis || seams.leak_teardown_cpu_state ||
              seams.deferred_exit_teardown)
      << "replay pins no seam; it would not reproduce anything";
  // With the bug's seam reopened the shrunken replay reproduces the exact
  // violation it was saved with...
  EXPECT_EQ(RunFuzzReplay(config, seams, trace), expected);
  // ...and the fixed mechanism layer survives the identical hostile policy
  // on the identical schedule.
  EXPECT_EQ(RunFuzzReplay(config, FuzzSeams(), trace), "");
}

INSTANTIATE_TEST_SUITE_P(CheckedIn, FuzzReplayRegressionTest,
                         ::testing::Values("unguarded_commit_ipis.replay",
                                           "leak_teardown_cpu_state.replay",
                                           "deferred_exit_teardown.replay"));

}  // namespace
}  // namespace gs
