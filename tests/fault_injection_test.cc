// End-to-end fault-injection tests: every FaultKind is exercised against a
// live machine with the invariant checker attached, asserting both the
// paper's recovery story (§3.1, §3.4) and that no kernel/ghOSt consistency
// property is violated along the way.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/per_cpu_fifo.h"
#include "src/sim/batch_runner.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulation.h"
#include "src/verify/invariants.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Topology SmallTopo(int cores) { return Topology::Make("test", 1, cores, 1, cores); }

class FaultInjectionTest : public ::testing::Test {
 protected:
  void Build(int cores, std::unique_ptr<Policy> policy,
             Enclave::Config config = Enclave::Config(),
             FaultInjector::Config faults = FaultInjector::Config(),
             uint64_t seed = 42) {
    machine_ = std::make_unique<Machine>(SmallTopo(cores));
    injector_ = std::make_unique<FaultInjector>(&machine_->loop(), &machine_->kernel().trace(),
                                                seed, faults);
    machine_->kernel().set_fault_injector(injector_.get());
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores), config);
    process_ = std::make_unique<AgentProcess>(&machine_->kernel(), machine_->ghost_class(),
                                              enclave_.get(), std::move(policy));
    process_->Start();
    checker_ = std::make_unique<InvariantChecker>(&machine_->kernel());
    checker_->Watch(enclave_.get());
    checker_->Start();
  }

  // A worker performing `n` bursts of `burst`, blocking `gap` between them.
  Task* Worker(const std::string& name, Duration burst, int n, Duration gap = 0) {
    Task* task = machine_->kernel().CreateTask(name);
    enclave_->AddTask(task);
    auto remaining = std::make_shared<int>(n);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    Kernel* kernel = &machine_->kernel();
    EventLoop* loop_ptr = &machine_->loop();
    *loop = [kernel, loop_ptr, remaining, burst, gap, loop](Task* t) {
      if (--*remaining <= 0) {
        kernel->Exit(t);
        return;
      }
      if (gap > 0) {
        kernel->Block(t);
        loop_ptr->ScheduleAfter(gap, [kernel, t, burst, loop] {
          kernel->StartBurst(t, burst, *loop);
          kernel->Wake(t);
        });
      } else {
        kernel->StartBurst(t, burst, *loop);
      }
    };
    kernel->StartBurst(task, burst, *loop);
    kernel->Wake(task);
    return task;
  }

  void ExpectAllDone(const std::vector<Task*>& tasks, Duration burst, int n) {
    for (Task* task : tasks) {
      EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
      EXPECT_EQ(task->total_runtime(), burst * n) << task->name() << " lost work";
    }
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<AgentProcess> process_;
  std::unique_ptr<InvariantChecker> checker_;
};

// §3.4: a wedged agent never schedules; the watchdog destroys the enclave
// within its bound and every thread finishes under CFS.
TEST_F(FaultInjectionTest, AgentStallTriggersWatchdogAndCfsFallback) {
  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(20);
  config.watchdog_period = Milliseconds(5);
  Build(2, std::make_unique<PerCpuFifoPolicy>(), config);
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(500), 20, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(2));
  injector_->After(0, FaultKind::kAgentStall, [this] { process_->SetStalled(true); });
  machine_->RunFor(Milliseconds(300));

  EXPECT_EQ(injector_->injected(FaultKind::kAgentStall), 1u);
  EXPECT_TRUE(enclave_->destroyed());
  ExpectAllDone(tasks, Microseconds(500), 20);
  for (Task* task : tasks) {
    EXPECT_EQ(task->sched_class(), machine_->kernel().default_class());
  }
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// §3.4: the agent process dies; a replacement attaches, restores policy state
// from the kernel's TaskDump, and resumes with zero lost work.
TEST_F(FaultInjectionTest, AgentCrashReplacementResumesFromDump) {
  Build(2, std::make_unique<PerCpuFifoPolicy>());
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(500), 20, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(2));

  std::unique_ptr<AgentProcess> replacement;
  injector_->After(Milliseconds(1), FaultKind::kAgentCrash, [this] { process_->Crash(); });
  machine_->loop().ScheduleAfter(Milliseconds(3), [this, &replacement] {
    replacement = std::make_unique<AgentProcess>(
        &machine_->kernel(), machine_->ghost_class(), enclave_.get(),
        std::make_unique<CentralizedFifoPolicy>());
    replacement->Start();
  });
  machine_->RunFor(Milliseconds(300));

  EXPECT_EQ(injector_->injected(FaultKind::kAgentCrash), 1u);
  EXPECT_FALSE(enclave_->destroyed());
  ExpectAllDone(tasks, Microseconds(500), 20);
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// §3.1/§3.4: overflow pressure drops messages; the agent notices (overflow
// latch), flushes all queues and resyncs from the dump — recovery beats the
// watchdog, so the enclave survives and no work is lost.
TEST_F(FaultInjectionTest, QueueOverflowPressureResyncsWithoutTeardown) {
  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(50);
  FaultInjector::Config faults;
  faults.msg_drop_probability = 0.3;
  faults.window_start = Milliseconds(2);
  faults.window_end = Milliseconds(8);
  Build(2, std::make_unique<CentralizedFifoPolicy>(), config, faults);
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(200), 40, Microseconds(50)));
  }
  machine_->RunFor(Milliseconds(300));

  EXPECT_GT(injector_->injected(FaultKind::kQueueOverflow), 0u);
  EXPECT_GT(enclave_->messages_dropped(), 0u);
  EXPECT_GE(process_->resyncs(), 1u);
  EXPECT_FALSE(enclave_->destroyed());
  ExpectAllDone(tasks, Microseconds(200), 40);
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// Late IPIs slow commits down but break nothing.
TEST_F(FaultInjectionTest, DelayedIpisPreserveInvariants) {
  FaultInjector::Config faults;
  faults.ipi_delay_probability = 0.5;
  Build(4, std::make_unique<CentralizedFifoPolicy>(), Enclave::Config(), faults);
  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(300), 30, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(300));

  EXPECT_GT(injector_->injected(FaultKind::kIpiDelay), 0u);
  ExpectAllDone(tasks, Microseconds(300), 30);
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// A "lost" IPI is redelivered after the resend timeout: forward progress is
// preserved, just slower (a silently dropped latch-enable would wedge the
// target CPU forever).
TEST_F(FaultInjectionTest, DroppedIpisAreRedelivered) {
  FaultInjector::Config faults;
  faults.ipi_drop_probability = 0.4;
  Build(4, std::make_unique<CentralizedFifoPolicy>(), Enclave::Config(), faults);
  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(300), 30, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(400));

  EXPECT_GT(injector_->injected(FaultKind::kIpiDrop), 0u);
  ExpectAllDone(tasks, Microseconds(300), 30);
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// §3.2: an ESTALE storm fails transactions in bulk; the policy retries and
// the workload still completes.
TEST_F(FaultInjectionTest, EStaleStormStillMakesProgress) {
  FaultInjector::Config faults;
  faults.estale_probability = 0.3;
  Build(2, std::make_unique<PerCpuFifoPolicy>(), Enclave::Config(), faults);
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(300), 30, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(400));

  EXPECT_GT(injector_->injected(FaultKind::kEStale), 0u);
  EXPECT_GT(enclave_->txns_failed(), 0u);
  ExpectAllDone(tasks, Microseconds(300), 30);
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// §3.4: destroying the enclave mid-load moves every thread back to CFS,
// which finishes the work.
TEST_F(FaultInjectionTest, EnclaveDestroyMidLoadFallsBackToCfs) {
  Build(2, std::make_unique<PerCpuFifoPolicy>());
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(500), 20, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(2));
  injector_->After(Milliseconds(1), FaultKind::kEnclaveDestroy, [this] { enclave_->Destroy(); });
  machine_->RunFor(Milliseconds(300));

  EXPECT_EQ(injector_->injected(FaultKind::kEnclaveDestroy), 1u);
  EXPECT_TRUE(enclave_->destroyed());
  ExpectAllDone(tasks, Microseconds(500), 20);
  for (Task* task : tasks) {
    EXPECT_EQ(task->sched_class(), machine_->kernel().default_class());
  }
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// A thread yanked out of the enclave mid-run continues under CFS; re-adding
// it later restarts its ghOSt life with a fresh sequence number (the
// checker's generation tracking must not flag the tseq restart).
TEST_F(FaultInjectionTest, RemoveTaskMidRunAndReAdd) {
  Build(2, std::make_unique<PerCpuFifoPolicy>());
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(500), 30, Microseconds(100)));
  }
  Task* victim = tasks[0];
  machine_->RunFor(Milliseconds(2));
  injector_->After(0, FaultKind::kRemoveTask, [this, victim] {
    if (victim->state() != TaskState::kDead) {
      enclave_->RemoveTask(victim);
    }
  });
  machine_->loop().ScheduleAfter(Milliseconds(2), [this, victim] {
    if (victim->state() != TaskState::kDead && victim->ghost_state() == nullptr) {
      enclave_->AddTask(victim);
    }
  });
  machine_->RunFor(Milliseconds(400));

  EXPECT_EQ(injector_->injected(FaultKind::kRemoveTask), 1u);
  ExpectAllDone(tasks, Microseconds(500), 30);
  EXPECT_TRUE(checker_->ok()) << checker_->Report();
}

// The chaos battery as a parallel sweep: a matrix of fault mixes x seeds,
// each run inside its own SimulationContext, fanned across a BatchRunner
// pool. Every run must hold the invariants and lose no work, and because a
// context shares nothing with its siblings, the parallel sweep must reach
// exactly the per-run outcomes of a serial one.
TEST(ChaosBatterySweep, ParallelMatrixMatchesSerialAndHoldsInvariants) {
  struct Outcome {
    uint64_t injected = 0;
    uint64_t txns_committed = 0;
    uint64_t messages_posted = 0;
    int64_t total_runtime = 0;
    bool all_done = false;
    bool invariants_ok = false;

    bool operator==(const Outcome& o) const {
      return injected == o.injected && txns_committed == o.txns_committed &&
             messages_posted == o.messages_posted &&
             total_runtime == o.total_runtime && all_done == o.all_done &&
             invariants_ok == o.invariants_ok;
    }
  };

  constexpr int kSeeds = 3;
  constexpr int kConfigs = 3;
  constexpr int kRuns = kSeeds * kConfigs;

  auto run_one = [](int index) -> Outcome {
    FaultInjector::Config faults;
    // IPI faults need remote commits, so that row runs the centralized
    // policy; the others exercise the per-CPU fast path.
    bool centralized = false;
    switch (index / kSeeds) {
      case 0:
        faults.estale_probability = 0.3;
        break;
      case 1:
        faults.ipi_delay_probability = 0.4;
        faults.ipi_drop_probability = 0.2;
        centralized = true;
        break;
      default:
        faults.msg_drop_probability = 0.2;
        faults.window_start = Milliseconds(2);
        faults.window_end = Milliseconds(8);
        break;
    }
    SimulationContext::Options options;
    options.topology = SmallTopo(2);
    options.seed = 42 + static_cast<uint64_t>(index % kSeeds);
    options.faults = faults;
    SimulationContext sim(std::move(options));

    auto enclave = sim.CreateEnclave(CpuMask::AllUpTo(2));
    std::unique_ptr<Policy> policy;
    if (centralized) {
      policy = std::make_unique<CentralizedFifoPolicy>();
    } else {
      policy = std::make_unique<PerCpuFifoPolicy>();
    }
    auto process = sim.CreateAgentProcess(enclave.get(), std::move(policy));
    process->Start();
    InvariantChecker checker(&sim.kernel());
    checker.Watch(enclave.get());
    checker.Start();

    constexpr Duration kBurst = Microseconds(300);
    constexpr int kBursts = 20;
    std::vector<Task*> tasks;
    for (int i = 0; i < 4; ++i) {
      Task* task = sim.kernel().CreateTask("w" + std::to_string(i));
      enclave->AddTask(task);
      auto remaining = std::make_shared<int>(kBursts);
      auto loop = std::make_shared<std::function<void(Task*)>>();
      Kernel* kernel = &sim.kernel();
      EventLoop* loop_ptr = &sim.loop();
      *loop = [kernel, loop_ptr, remaining, loop](Task* t) {
        if (--*remaining <= 0) {
          kernel->Exit(t);
          return;
        }
        kernel->Block(t);
        loop_ptr->ScheduleAfter(Microseconds(100), [kernel, t, loop] {
          kernel->StartBurst(t, kBurst, *loop);
          kernel->Wake(t);
        });
      };
      kernel->StartBurst(task, kBurst, *loop);
      kernel->Wake(task);
      tasks.push_back(task);
    }
    sim.RunFor(Milliseconds(400));

    Outcome out;
    out.injected = sim.fault_injector()->total_injected();
    out.txns_committed = enclave->txns_committed();
    out.messages_posted = enclave->messages_posted();
    out.all_done = true;
    for (Task* task : tasks) {
      out.total_runtime += task->total_runtime();
      out.all_done &= task->state() == TaskState::kDead &&
                      task->total_runtime() == kBurst * kBursts;
    }
    out.invariants_ok = checker.ok();
    return out;
  };

  std::vector<Outcome> serial(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    serial[i] = run_one(i);
  }
  std::vector<Outcome> parallel(kRuns);
  BatchRunner runner(4);
  runner.Run(kRuns, [&](int i) { parallel[i] = run_one(i); });

  for (int i = 0; i < kRuns; ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_TRUE(serial[i].invariants_ok);
    EXPECT_TRUE(serial[i].all_done) << "work lost under faults";
    EXPECT_GT(serial[i].injected, 0u);
    EXPECT_TRUE(serial[i] == parallel[i])
        << "parallel chaos run diverged from serial";
  }
}

// The checker is not a rubber stamp: corrupting a status word is reported.
TEST_F(FaultInjectionTest, CheckerDetectsCorruptedStatusWord) {
  Build(2, std::make_unique<PerCpuFifoPolicy>());
  Task* worker = Worker("w", Microseconds(500), 50, Microseconds(100));
  machine_->RunFor(Milliseconds(2));
  ASSERT_TRUE(checker_->ok()) << checker_->Report();

  GhostTask* gt = enclave_->Find(worker->tid());
  ASSERT_NE(gt, nullptr);
  gt->status.tseq += 7;  // simulate a torn/corrupted shared-memory write
  checker_->CheckNow();
  EXPECT_FALSE(checker_->ok());
  gt->status.tseq -= 7;
}

}  // namespace
}  // namespace gs
