// Cross-module integration tests: multi-enclave isolation, class
// co-existence, the fast path under a live policy, determinism across the
// full stack, and invariant sweeps.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"

#include "src/base/rng.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/per_cpu_fifo.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Task* BurstyWorker(Machine& m, Enclave& enclave, const std::string& name, Duration burst,
                   Duration gap, int repeats) {
  Task* t = m.kernel().CreateTask(name);
  enclave.AddTask(t);
  Kernel* kernel = &m.kernel();
  EventLoop* loop_ptr = &m.loop();
  auto remaining = std::make_shared<int>(repeats);
  auto loop = std::make_shared<std::function<void(Task*)>>();
  *loop = [kernel, loop_ptr, remaining, burst, gap, loop](Task* task) {
    if (--*remaining <= 0) {
      kernel->Exit(task);
      return;
    }
    kernel->Block(task);
    loop_ptr->ScheduleAfter(gap, [kernel, task, burst, loop] {
      kernel->StartBurst(task, burst, *loop);
      kernel->Wake(task);
    });
  };
  kernel->StartBurst(t, burst, *loop);
  kernel->Wake(t);
  return t;
}

TEST(MultiEnclaveTest, TwoEnclavesRunIndependentPolicies) {
  // Fig 2's split: one enclave per half of the machine, per-CPU FIFO on one,
  // centralized on the other.
  Machine m(Topology::Make("t", 1, 8, 1, 8));
  auto left = m.CreateEnclave(CpuMask::AllUpTo(4));
  CpuMask right_cpus;
  for (int cpu = 4; cpu < 8; ++cpu) {
    right_cpus.Set(cpu);
  }
  auto right = m.CreateEnclave(right_cpus);

  AgentProcess left_agents(&m.kernel(), m.ghost_class(), left.get(),
                           std::make_unique<PerCpuFifoPolicy>());
  left_agents.Start();
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 4;
  AgentProcess right_agents(&m.kernel(), m.ghost_class(), right.get(),
                            std::make_unique<CentralizedFifoPolicy>(options));
  right_agents.Start();

  std::vector<Task*> left_tasks, right_tasks;
  for (int i = 0; i < 4; ++i) {
    left_tasks.push_back(
        BurstyWorker(m, *left, "L" + std::to_string(i), Microseconds(100), Microseconds(50), 10));
    right_tasks.push_back(
        BurstyWorker(m, *right, "R" + std::to_string(i), Microseconds(100), Microseconds(50), 10));
  }
  m.RunFor(Milliseconds(100));
  for (Task* t : left_tasks) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name();
    EXPECT_LT(t->last_cpu(), 4) << t->name() << " escaped its enclave";
  }
  for (Task* t : right_tasks) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name();
    EXPECT_GE(t->last_cpu(), 4) << t->name() << " escaped its enclave";
  }
}

TEST(MultiEnclaveTest, DestroyingOneEnclaveLeavesTheOtherIntact) {
  Machine m(Topology::Make("t", 1, 8, 1, 8));
  auto left = m.CreateEnclave(CpuMask::AllUpTo(4));
  CpuMask right_cpus;
  for (int cpu = 4; cpu < 8; ++cpu) {
    right_cpus.Set(cpu);
  }
  auto right = m.CreateEnclave(right_cpus);
  AgentProcess left_agents(&m.kernel(), m.ghost_class(), left.get(),
                           std::make_unique<PerCpuFifoPolicy>());
  left_agents.Start();
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 4;
  AgentProcess right_agents(&m.kernel(), m.ghost_class(), right.get(),
                            std::make_unique<CentralizedFifoPolicy>(options));
  right_agents.Start();

  Task* left_task = BurstyWorker(m, *left, "L", Microseconds(200), Microseconds(50), 50);
  Task* right_task = BurstyWorker(m, *right, "R", Microseconds(200), Microseconds(50), 50);
  m.RunFor(Milliseconds(2));

  left->Destroy();
  m.RunFor(Milliseconds(100));
  // Left task fell back to CFS and still finished; right unaffected.
  EXPECT_EQ(left_task->state(), TaskState::kDead);
  EXPECT_EQ(left_task->sched_class(), m.kernel().default_class());
  EXPECT_EQ(right_task->state(), TaskState::kDead);
  EXPECT_FALSE(right->destroyed());
}

TEST(CoexistenceTest, CfsMicroQuantaAndGhostShareTheMachine) {
  Machine m(Topology::Make("t", 1, 2, 1, 2));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(2));
  AgentProcess agents(&m.kernel(), m.ghost_class(), enclave.get(),
                      std::make_unique<CentralizedFifoPolicy>());
  agents.Start();

  Task* ghost_hog = BurstyWorker(m, *enclave, "ghost", Milliseconds(100), 0, 2);
  Task* cfs_hog = SpawnHog(m.kernel(), "cfs", nullptr, Milliseconds(1));
  Task* mq_hog = SpawnHog(m.kernel(), "mq", m.mq_class(), Milliseconds(1));
  m.RunFor(Milliseconds(100));

  // Priority order must hold. The spinning global agent owns CPU 0, so the
  // MicroQuanta hog gets ~90% of CPU 1 (0.9 ms quanta / 1 ms period) and the
  // CFS hog the remaining ~10%; the ghOSt thread (lowest class) gets nothing
  // while CFS wants the CPU.
  EXPECT_GT(mq_hog->total_runtime(), Milliseconds(85));
  EXPECT_GT(cfs_hog->total_runtime(), Milliseconds(8));
  EXPECT_LT(cfs_hog->total_runtime(), Milliseconds(20));
  EXPECT_GT(m.mq_class()->throttle_count(), 50u);
  EXPECT_LT(ghost_hog->total_runtime(), Milliseconds(5));
}

TEST(FastPathIntegrationTest, PolicyPublishesAndIdleCpusConsume) {
  Machine m(Topology::Make("t", 1, 4, 1, 4));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(4));
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 0;
  options.use_fastpath = true;
  options.extra_loop_cost = Microseconds(50);  // slow agent: the ring matters
  AgentProcess agents(&m.kernel(), m.ghost_class(), enclave.get(),
                      std::make_unique<CentralizedFifoPolicy>(options));
  agents.Start();
  std::vector<Task*> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(BurstyWorker(m, *enclave, "w" + std::to_string(i), Microseconds(20),
                                 Microseconds(30), 50));
  }
  m.RunFor(Milliseconds(100));
  for (Task* t : tasks) {
    EXPECT_EQ(t->state(), TaskState::kDead) << t->name();
  }
  EXPECT_GT(m.ghost_class()->fastpath_picks(), 20u)
      << "idle CPUs should serve wakeups from the ring while the agent crawls";
}

// Determinism across the full stack, parameterized by policy shape.
class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  auto run = [&] {
    Machine m(Topology::Make("t", 1, 4, 2, 4));
    auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
    std::unique_ptr<Policy> policy;
    if (GetParam() == 0) {
      policy = std::make_unique<PerCpuFifoPolicy>();
    } else {
      CentralizedFifoPolicy::Options options;
      options.preemption_timeslice = GetParam() == 2 ? Microseconds(30) : 0;
      policy = std::make_unique<CentralizedFifoPolicy>(options);
    }
    AgentProcess agents(&m.kernel(), m.ghost_class(), enclave.get(), std::move(policy));
    agents.Start();
    Rng rng(99);
    std::vector<Task*> tasks;
    for (int i = 0; i < 12; ++i) {
      tasks.push_back(BurstyWorker(m, *enclave, "w" + std::to_string(i),
                                   Microseconds(10 + rng.NextBounded(200)),
                                   Microseconds(10 + rng.NextBounded(100)), 20));
    }
    m.RunFor(Milliseconds(80));
    std::vector<int64_t> trace;
    for (Task* t : tasks) {
      trace.push_back(t->total_runtime());
      trace.push_back(static_cast<int64_t>(t->state()));
    }
    trace.push_back(static_cast<int64_t>(m.kernel().total_context_switches()));
    trace.push_back(static_cast<int64_t>(enclave->messages_posted()));
    trace.push_back(static_cast<int64_t>(enclave->txns_committed()));
    return trace;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Policies, DeterminismTest, ::testing::Values(0, 1, 2));

// Conservation sweep: under any of the stock policies, no work is lost.
class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, EveryBurstCompletesExactly) {
  const int num_tasks = GetParam();
  Machine m(Topology::Make("t", 1, 4, 2, 4));
  auto enclave = m.CreateEnclave(m.kernel().topology().AllCpus());
  AgentProcess agents(&m.kernel(), m.ghost_class(), enclave.get(),
                      std::make_unique<CentralizedFifoPolicy>());
  agents.Start();
  std::vector<Task*> tasks;
  for (int i = 0; i < num_tasks; ++i) {
    tasks.push_back(BurstyWorker(m, *enclave, "w" + std::to_string(i), Microseconds(70),
                                 Microseconds(20), 10));
  }
  m.RunFor(Milliseconds(200));
  for (Task* t : tasks) {
    ASSERT_EQ(t->state(), TaskState::kDead) << t->name();
    // Demanded *work* is conserved exactly; wall-clock CPU time exceeds it
    // when a hyperthread sibling was busy (0.7 speed factor).
    EXPECT_GE(t->total_runtime(), Microseconds(70) * 10) << t->name();
    EXPECT_LE(t->total_runtime(),
              static_cast<Duration>(Microseconds(70) * 10 / 0.7) + Microseconds(2))
        << t->name();
  }
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, ConservationTest, ::testing::Values(1, 4, 16, 64));

}  // namespace
}  // namespace gs
