// Message-queue overflow: the recoverable path (§3.1/§3.4).
//
// A full queue no longer crashes the simulated kernel. The message is
// dropped, Tseq still advances (a detectable gap, as in the real uAPI), the
// per-task resync flag and the enclave overflow latch are raised, and the
// consumer is still woken. The agent runtime recovers with the upgrade
// machinery: FlushAllQueues() + Policy::Restore(TaskDump()).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/verify/invariants.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Topology SmallTopo(int cores) { return Topology::Make("test", 1, cores, 1, cores); }

// Unit level: fill a tiny queue past capacity and verify the kernel-side
// overflow bookkeeping plus recovery via TaskDump + FlushAllQueues.
TEST(OverflowTest, TinyQueueDropsAndRecoversViaDumpAndFlush) {
  Machine machine(SmallTopo(2));
  Enclave::Config config;
  config.default_queue_capacity = 2;
  auto enclave = machine.CreateEnclave(CpuMask::AllUpTo(2), config);

  // No agent is draining, so THREAD_CREATED messages pile up: 5 posts into a
  // 2-slot ring must drop 3.
  std::vector<Task*> tasks;
  for (int i = 0; i < 5; ++i) {
    Task* task = machine.kernel().CreateTask("t" + std::to_string(i));
    enclave->AddTask(task);
    tasks.push_back(task);
  }
  EXPECT_EQ(enclave->default_queue()->size(), 2u);
  EXPECT_EQ(enclave->messages_dropped(), 3u);
  EXPECT_EQ(enclave->default_queue()->overflows(), 3u);
  EXPECT_TRUE(enclave->overflow_pending());

  // Tseq advanced for dropped messages too: the gap is how a real agent
  // notices it missed something.
  for (Task* task : tasks) {
    EXPECT_EQ(enclave->Find(task->tid())->tseq, 1u) << task->name();
  }

  // The dump is complete despite the drops — nothing was lost kernel-side.
  EXPECT_EQ(enclave->TaskDump().size(), 5u);

  // Recovery: flush supersedes the (partial) message history and clears all
  // overflow state; the latch hands ownership of the resync to one caller.
  EXPECT_TRUE(enclave->ConsumeOverflowPending());
  EXPECT_FALSE(enclave->ConsumeOverflowPending());
  enclave->FlushAllQueues();
  EXPECT_EQ(enclave->default_queue()->size(), 0u);
  EXPECT_FALSE(enclave->overflow_pending());
  for (Task* task : tasks) {
    EXPECT_FALSE(enclave->Find(task->tid())->resync) << task->name();
  }
}

// End to end: a real agent behind a tiny queue hits overflow from a thread
// herd, resyncs from the dump, and finishes every thread with no lost work.
TEST(OverflowTest, AgentRecoversFromRealOverflowUnderLoad) {
  Machine machine(SmallTopo(2));
  Enclave::Config config;
  config.default_queue_capacity = 4;
  config.watchdog_timeout = Milliseconds(50);
  auto enclave = machine.CreateEnclave(CpuMask::AllUpTo(2), config);
  AgentProcess process(&machine.kernel(), machine.ghost_class(), enclave.get(),
                       std::make_unique<CentralizedFifoPolicy>());
  process.Start();
  InvariantChecker checker(&machine.kernel());
  checker.Watch(enclave.get());
  checker.Start();
  machine.RunFor(Microseconds(100));

  // A herd of 10 simultaneous arrivals floods the 4-slot default queue.
  std::vector<Task*> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back(SpawnOneShot(machine.kernel(), "w" + std::to_string(i),
                                 Microseconds(300)));
    enclave->AddTask(tasks.back());
  }
  machine.RunFor(Milliseconds(100));

  EXPECT_GT(enclave->messages_dropped(), 0u);
  EXPECT_GE(process.resyncs(), 1u);
  EXPECT_FALSE(enclave->destroyed()) << "resync must beat the watchdog";
  for (Task* task : tasks) {
    EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
    EXPECT_EQ(task->total_runtime(), Microseconds(300)) << task->name();
  }
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

}  // namespace
}  // namespace gs
