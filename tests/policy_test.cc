// Tests for the agent-side library (task table, runqueues) and the Search /
// Shinjuku policies' behaviours.
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/agent/sdk/runqueue.h"
#include "src/agent/task_table.h"
#include "src/ghost/machine.h"
#include "src/policies/search.h"
#include "src/policies/shinjuku.h"
#include "tests/test_util.h"

namespace gs {
namespace {

// --- TaskTable -----------------------------------------------------------------

Message Msg(MessageType type, int64_t tid, uint32_t tseq, bool runnable = false) {
  Message msg;
  msg.type = type;
  msg.tid = tid;
  msg.tseq = tseq;
  msg.runnable = runnable;
  msg.affinity.SetAll();
  return msg;
}

TEST(TaskTableTest, LifecycleTransitions) {
  TaskTable table;
  PolicyTask* task = nullptr;

  EXPECT_EQ(table.Apply(Msg(MessageType::kTaskNew, 7, 1, false), &task),
            TaskTable::Event::kNew);
  ASSERT_NE(task, nullptr);
  EXPECT_FALSE(task->runnable);

  EXPECT_EQ(table.Apply(Msg(MessageType::kTaskWakeup, 7, 2), &task),
            TaskTable::Event::kRunnable);
  EXPECT_TRUE(task->runnable);
  EXPECT_EQ(task->tseq, 2u);

  EXPECT_EQ(table.Apply(Msg(MessageType::kTaskBlocked, 7, 3), &task),
            TaskTable::Event::kBlocked);
  EXPECT_FALSE(task->runnable);

  EXPECT_EQ(table.Apply(Msg(MessageType::kTaskDead, 7, 4), &task), TaskTable::Event::kDead);
  table.Remove(7);
  EXPECT_EQ(table.Find(7), nullptr);
}

TEST(TaskTableTest, PreemptionClearsAssignment) {
  TaskTable table;
  PolicyTask* task = nullptr;
  table.Apply(Msg(MessageType::kTaskNew, 1, 1, true), &task);
  task->assigned_cpu = 5;
  Message preempt = Msg(MessageType::kTaskPreempted, 1, 2);
  preempt.cpu = 5;
  table.Apply(preempt, &task);
  EXPECT_EQ(task->assigned_cpu, -1);
  EXPECT_EQ(task->last_cpu, 5);
  EXPECT_TRUE(task->runnable);
}

TEST(TaskTableTest, UnknownAndCpuMessagesAreIgnored) {
  TaskTable table;
  PolicyTask* task = nullptr;
  EXPECT_EQ(table.Apply(Msg(MessageType::kTaskWakeup, 99, 1), &task),
            TaskTable::Event::kNone);
  Message tick;
  tick.type = MessageType::kTimerTick;
  tick.tid = 0;
  EXPECT_EQ(table.Apply(tick, &task), TaskTable::Event::kNone);
  EXPECT_EQ(task, nullptr);
}

// --- Runqueues ------------------------------------------------------------------------

TEST(FifoRunqueueTest, OrderAndRemove) {
  TaskTable table;
  PolicyTask* a = table.Add(1);
  PolicyTask* b = table.Add(2);
  PolicyTask* c = table.Add(3);
  FifoRunqueue rq;
  rq.Push(a);
  rq.Push(b);
  rq.PushFront(c);
  EXPECT_EQ(rq.size(), 3u);
  EXPECT_TRUE(rq.Remove(b));
  EXPECT_FALSE(rq.Remove(b));
  EXPECT_EQ(rq.Pop(), c);
  EXPECT_EQ(rq.Pop(), a);
  EXPECT_EQ(rq.Pop(), nullptr);
}

TEST(MinRunqueueTest, OrdersByKeyThenTid) {
  TaskTable table;
  PolicyTask* a = table.Add(10);
  PolicyTask* b = table.Add(11);
  PolicyTask* c = table.Add(12);
  MinRunqueue rq;
  rq.Push(a, 100);
  rq.Push(b, 50);
  rq.Push(c, 100);
  EXPECT_EQ(rq.PopMin(), b);
  EXPECT_EQ(rq.PopMin(), a) << "key tie broken by tid";
  EXPECT_TRUE(rq.Contains(c));
  EXPECT_TRUE(rq.Remove(c));
  EXPECT_TRUE(rq.empty());
}

// --- Search policy placement behaviour -------------------------------------------------

class SearchPolicyTest : public ::testing::Test {
 protected:
  void Build() {
    machine_ = std::make_unique<Machine>(Topology::AmdRome256(),
                                         CostModel().WithCacheWarmth());
    enclave_ = machine_->CreateEnclave(machine_->kernel().topology().AllCpus());
    SearchPolicy::Options options;
    options.global_cpu = 0;
    process_ = std::make_unique<AgentProcess>(&machine_->kernel(), machine_->ghost_class(),
                                              enclave_.get(),
                                              std::make_unique<SearchPolicy>(options));
    process_->Start();
  }

  Task* BurstyWorker(const std::string& name, Duration burst, Duration gap, int repeats) {
    Task* t = machine_->kernel().CreateTask(name);
    enclave_->AddTask(t);
    Kernel* kernel = &machine_->kernel();
    EventLoop* loop_ptr = &machine_->loop();
    auto remaining = std::make_shared<int>(repeats);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    *loop = [kernel, loop_ptr, remaining, burst, gap, loop](Task* task) {
      if (--*remaining <= 0) {
        kernel->Exit(task);
        return;
      }
      kernel->Block(task);
      loop_ptr->ScheduleAfter(gap, [kernel, task, burst, loop] {
        kernel->StartBurst(task, burst, *loop);
        kernel->Wake(task);
      });
    };
    kernel->StartBurst(t, burst, *loop);
    kernel->Wake(t);
    return t;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<AgentProcess> process_;
};

TEST_F(SearchPolicyTest, RepeatedWakesStayOnWarmCcx) {
  Build();
  Task* worker = BurstyWorker("w", Microseconds(200), Microseconds(100), 20);
  machine_->RunFor(Milliseconds(20));
  ASSERT_EQ(worker->state(), TaskState::kDead);
  // With an empty machine, every wake must land back on the same CCX.
  auto* policy = static_cast<SearchPolicy*>(process_->policy());
  EXPECT_GE(policy->scheduled(), 20u);
}

TEST_F(SearchPolicyTest, RespectsNumaAffinity) {
  Build();
  Task* pinned = machine_->kernel().CreateTask("pinned");
  enclave_->AddTask(pinned);
  machine_->kernel().SetAffinity(pinned, machine_->kernel().topology().NumaMask(1));
  machine_->kernel().StartBurst(pinned, Microseconds(500), [this](Task* t) {
    machine_->kernel().Exit(t);
  });
  machine_->kernel().Wake(pinned);
  machine_->RunFor(Milliseconds(5));
  EXPECT_EQ(pinned->state(), TaskState::kDead);
  EXPECT_EQ(machine_->kernel().topology().cpu(pinned->last_cpu()).numa, 1);
}

TEST_F(SearchPolicyTest, MinRuntimeOrderFavoursFreshThreads) {
  Build();
  // A "veteran" with lots of accumulated runtime and a fresh thread both
  // wake with only one available CPU slot: the fresh one goes first.
  Task* veteran = BurstyWorker("vet", Milliseconds(5), Microseconds(10), 3);
  machine_->RunFor(Milliseconds(6));  // veteran accumulates runtime
  // Occupy every CPU except one with CFS hogs so the policy has one slot.
  const int total = machine_->kernel().topology().num_cpus();
  for (int cpu = 1; cpu < total - 1; ++cpu) {
    Task* hog = SpawnHog(machine_->kernel(), "hog" + std::to_string(cpu));
    machine_->kernel().SetAffinity(hog, CpuMask::Single(cpu));
  }
  machine_->RunFor(Milliseconds(10));
  Task* fresh = BurstyWorker("fresh", Microseconds(100), Microseconds(10), 2);
  machine_->RunFor(Milliseconds(30));
  EXPECT_EQ(fresh->state(), TaskState::kDead) << "fresh thread should get the slot";
  (void)veteran;
}

// --- Shinjuku policy factories ------------------------------------------------------------

TEST(ShinjukuFactoryTest, PoliciesCarryOptions) {
  auto shinjuku = MakeShinjukuPolicy(Microseconds(30));
  EXPECT_STREQ(shinjuku->name(), "centralized-fifo");
  auto shenango = MakeShinjukuShenangoPolicy(Microseconds(30), [](int64_t) { return 1; });
  auto snap = MakeSnapPolicy([](int64_t) { return 0; });
  EXPECT_NE(shenango, nullptr);
  EXPECT_NE(snap, nullptr);
}

}  // namespace
}  // namespace gs
