// Unit tests for src/base: histogram, RNG, cpumask, rings.
#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/cpumask.h"
#include "src/base/histogram.h"
#include "src/base/mpmc_ring.h"
#include "src/base/rng.h"
#include "src/base/spsc_ring.h"
#include "src/base/time.h"

namespace gs {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Microseconds(3), 3000);
  EXPECT_EQ(Milliseconds(2), 2'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToMicros(Microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(4)), 4.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (int i = 0; i < 32; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 32);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  // Values < 32 land in exact buckets.
  EXPECT_EQ(h.Percentile(100), 31);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<int64_t>(rng.NextBounded(10'000'000)));
  }
  int64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(HistogramTest, BoundedRelativeError) {
  Histogram h;
  const int64_t value = 123'456'789;
  h.Add(value);
  // A single sample: every percentile must be within ~3.2% of the value.
  const int64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, value * 97 / 100);
  EXPECT_LE(p50, value * 104 / 100);
}

TEST(HistogramTest, MergeMatchesCombined) {
  Histogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1'000'000));
    if (i % 2 == 0) {
      a.Add(v);
    } else {
      b.Add(v);
    }
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.Percentile(99), combined.Percentile(99));
  EXPECT_EQ(a.max(), combined.max());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.005) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.005, 0.001);
}

TEST(RngTest, BoundedInRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(CpuMaskTest, SetClearCount) {
  CpuMask mask;
  EXPECT_TRUE(mask.Empty());
  mask.Set(0);
  mask.Set(63);
  mask.Set(64);
  mask.Set(511);
  EXPECT_EQ(mask.Count(), 4);
  EXPECT_TRUE(mask.IsSet(63));
  EXPECT_TRUE(mask.IsSet(64));
  mask.Clear(63);
  EXPECT_FALSE(mask.IsSet(63));
  EXPECT_EQ(mask.Count(), 3);
}

TEST(CpuMaskTest, Iteration) {
  CpuMask mask;
  const std::vector<int> cpus = {3, 64, 65, 130, 400};
  for (int cpu : cpus) {
    mask.Set(cpu);
  }
  std::vector<int> seen;
  for (int cpu = mask.First(); cpu >= 0; cpu = mask.NextAfter(cpu)) {
    seen.push_back(cpu);
  }
  EXPECT_EQ(seen, cpus);
}

TEST(CpuMaskTest, Operators) {
  CpuMask a = CpuMask::AllUpTo(8);
  CpuMask b = CpuMask::Single(3) | CpuMask::Single(9);
  EXPECT_EQ((a & b).Count(), 1);
  EXPECT_TRUE((a & b).IsSet(3));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(CpuMask::Single(1).Intersects(CpuMask::Single(2)));
  EXPECT_EQ(CpuMask::AllUpTo(4).ToString(), "{0,1,2,3}");
}

TEST(SpscRingTest, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99)) << "ring should be full";
  for (int i = 0; i < 8; ++i) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, PeekDoesNotConsume) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.Peek(), nullptr);
  ring.TryPush(42);
  ASSERT_NE(ring.Peek(), nullptr);
  EXPECT_EQ(*ring.Peek(), 42);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(*ring.TryPop(), 42);
}

TEST(SpscRingTest, WrapAround) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.TryPush(round));
    EXPECT_EQ(*ring.TryPop(), round);
  }
}

TEST(SpscRingTest, ThreadedProducerConsumer) {
  SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kCount = 200000;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) {
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kCount) {
    auto v = ring.TryPop();
    if (v.has_value()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

TEST(MpmcRingTest, BasicFifo) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(8));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(*ring.TryPop(), i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(MpmcRingTest, ThreadedManyProducersManyConsumers) {
  MpmcRing<uint64_t> ring(256);
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr uint64_t kPerProducer = 50000;
  std::atomic<uint64_t> consumed{0};
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t value = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        while (!ring.TryPush(value)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        auto v = ring.TryPop();
        if (v.has_value()) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

}  // namespace
}  // namespace gs
