// End-to-end tests: agents + policies scheduling ghOSt threads on the
// simulated kernel (per-CPU and centralized models, upgrade, crash fallback).
#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"
#include "src/policies/per_cpu_fifo.h"
#include "tests/test_util.h"

namespace gs {
namespace {

Topology SmallTopo(int cores, int smt = 1) {
  return Topology::Make("test", 1, cores, smt, cores);
}

class AgentTest : public ::testing::Test {
 protected:
  void Build(int cores, std::unique_ptr<Policy> policy,
             Enclave::Config config = Enclave::Config()) {
    machine_ = std::make_unique<Machine>(SmallTopo(cores));
    enclave_ = machine_->CreateEnclave(CpuMask::AllUpTo(cores), config);
    process_ = std::make_unique<AgentProcess>(&machine_->kernel(), machine_->ghost_class(),
                                              enclave_.get(), std::move(policy));
    process_->Start();
  }

  // A worker that performs `n` bursts of `burst`, blocking `gap` between
  // them, then exits.
  Task* Worker(const std::string& name, Duration burst, int n, Duration gap = 0) {
    Task* task = machine_->kernel().CreateTask(name);
    enclave_->AddTask(task);
    auto remaining = std::make_shared<int>(n);
    auto loop = std::make_shared<std::function<void(Task*)>>();
    Kernel* kernel = &machine_->kernel();
    EventLoop* loop_ptr = &machine_->loop();
    *loop = [kernel, loop_ptr, remaining, burst, gap, loop](Task* t) {
      if (--*remaining <= 0) {
        kernel->Exit(t);
        return;
      }
      if (gap > 0) {
        kernel->Block(t);
        loop_ptr->ScheduleAfter(gap, [kernel, t, burst, loop] {
          kernel->StartBurst(t, burst, *loop);
          kernel->Wake(t);
        });
      } else {
        kernel->StartBurst(t, burst, *loop);
      }
    };
    kernel->StartBurst(task, burst, *loop);
    kernel->Wake(task);
    return task;
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Enclave> enclave_;
  std::unique_ptr<AgentProcess> process_;
};

TEST_F(AgentTest, PerCpuFifoRunsTasksToCompletion) {
  Build(2, std::make_unique<PerCpuFifoPolicy>());
  std::vector<Task*> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(100), 3, Microseconds(50)));
  }
  machine_->RunFor(Milliseconds(50));
  for (Task* task : tasks) {
    EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
    EXPECT_EQ(task->total_runtime(), Microseconds(300)) << task->name();
  }
}

TEST_F(AgentTest, PerCpuFifoSchedulingLatencyIsMicroscale) {
  Build(1, std::make_unique<PerCpuFifoPolicy>());
  machine_->RunFor(Milliseconds(1));
  const Time start = machine_->now();
  Task* task = Worker("w", Microseconds(10), 1);
  Time done = -1;
  for (int i = 0; i < 1000 && done < 0; ++i) {
    machine_->RunFor(Microseconds(1));
    if (task->state() == TaskState::kDead) {
      done = machine_->now();
    }
  }
  ASSERT_GE(done, 0);
  // Wakeup -> message -> agent wake -> drain -> commit -> switch -> 10us run.
  // The scheduling overhead itself is single-digit microseconds (Table 3).
  EXPECT_LT(done - start, Microseconds(10) + Microseconds(10));
}

TEST_F(AgentTest, CentralizedFifoRunsTasksAcrossCpus) {
  Build(4, std::make_unique<CentralizedFifoPolicy>());
  std::vector<Task*> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(200), 2, Microseconds(20)));
  }
  machine_->RunFor(Milliseconds(50));
  for (Task* task : tasks) {
    EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
  }
  auto* policy = static_cast<CentralizedFifoPolicy*>(process_->policy());
  EXPECT_GE(policy->scheduled(), 24u);
}

TEST_F(AgentTest, CentralizedTimeslicePreemptsLongRequests) {
  CentralizedFifoPolicy::Options options;
  options.preemption_timeslice = Microseconds(30);
  Build(2, std::make_unique<CentralizedFifoPolicy>(options));
  // One long hog and a stream of short tasks sharing the single worker CPU
  // (CPU 1; CPU 0 hosts the global agent).
  Task* hog = Worker("hog", Milliseconds(5), 1);
  machine_->RunFor(Microseconds(100));
  std::vector<Task*> shorts;
  for (int i = 0; i < 5; ++i) {
    shorts.push_back(Worker("s" + std::to_string(i), Microseconds(10), 1));
  }
  machine_->RunFor(Milliseconds(2));
  // The shorts must all have finished long before the 5 ms hog completes.
  for (Task* task : shorts) {
    EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
  }
  EXPECT_NE(hog->state(), TaskState::kDead);
  auto* policy = static_cast<CentralizedFifoPolicy*>(process_->policy());
  EXPECT_GT(policy->preemptions(), 0u);
  machine_->RunFor(Milliseconds(10));
  EXPECT_EQ(hog->state(), TaskState::kDead);
}

TEST_F(AgentTest, BatchTierOnlyRunsWhenLatencyTierIdle) {
  CentralizedFifoPolicy::Options options;
  options.preemption_timeslice = Microseconds(50);
  auto batch_tids = std::make_shared<std::set<int64_t>>();
  options.tier_of = [batch_tids](int64_t tid) { return batch_tids->count(tid) ? 1 : 0; };
  Build(2, std::make_unique<CentralizedFifoPolicy>(options));

  // Batch hog claims the worker CPU.
  Task* batch = machine_->kernel().CreateTask("batch");
  batch_tids->insert(batch->tid());
  enclave_->AddTask(batch);
  auto loop = std::make_shared<std::function<void(Task*)>>();
  Kernel* kernel = &machine_->kernel();
  *loop = [kernel, loop](Task* t) { kernel->StartBurst(t, Milliseconds(1), *loop); };
  kernel->StartBurst(batch, Milliseconds(1), *loop);
  kernel->Wake(batch);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(batch->state(), TaskState::kRunning);

  // A latency-critical task arrives: it must preempt the batch hog quickly.
  const Time t0 = machine_->now();
  Task* lc = Worker("lc", Microseconds(20), 1);
  machine_->RunFor(Milliseconds(2));
  EXPECT_EQ(lc->state(), TaskState::kDead);
  EXPECT_LT(lc->total_runtime(), Microseconds(21));
  (void)t0;
  // Batch resumes afterwards.
  machine_->RunFor(Milliseconds(2));
  EXPECT_EQ(batch->state(), TaskState::kRunning);
}

TEST_F(AgentTest, InPlaceAgentUpgradePreservesThreads) {
  Build(2, std::make_unique<PerCpuFifoPolicy>());
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(500), 40, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(3));

  // Old agent exits; new agent process attaches, restores from the kernel
  // dump, and resumes scheduling (§3.4). Threads keep making progress.
  process_->Shutdown();
  auto replacement = std::make_unique<AgentProcess>(
      &machine_->kernel(), machine_->ghost_class(), enclave_.get(),
      std::make_unique<CentralizedFifoPolicy>());
  replacement->Start();
  machine_->RunFor(Milliseconds(100));
  for (Task* task : tasks) {
    EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
    EXPECT_EQ(task->total_runtime(), Microseconds(500) * 40);
  }
}

TEST_F(AgentTest, CrashFallsBackToCfsViaWatchdog) {
  Enclave::Config config;
  config.watchdog_timeout = Milliseconds(20);
  config.watchdog_period = Milliseconds(5);
  Build(2, std::make_unique<PerCpuFifoPolicy>(), config);
  std::vector<Task*> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Worker("w" + std::to_string(i), Microseconds(500), 20, Microseconds(100)));
  }
  machine_->RunFor(Milliseconds(2));
  process_->Crash();
  // With no agent, runnable ghOSt threads stall; the watchdog destroys the
  // enclave and the threads finish under CFS.
  machine_->RunFor(Milliseconds(200));
  EXPECT_TRUE(enclave_->destroyed());
  for (Task* task : tasks) {
    EXPECT_EQ(task->state(), TaskState::kDead) << task->name();
    EXPECT_EQ(task->sched_class(), machine_->kernel().default_class());
  }
}

TEST_F(AgentTest, GhostThreadsArePreemptedByCfs) {
  Build(2, std::make_unique<CentralizedFifoPolicy>());
  Task* ghost_hog = Worker("ghost-hog", Milliseconds(50), 1);
  machine_->RunFor(Milliseconds(1));
  ASSERT_EQ(ghost_hog->state(), TaskState::kRunning);
  const int cpu = ghost_hog->cpu();
  // A CFS thread pinned to the same CPU must preempt the ghOSt thread (§3.4).
  Task* cfs = machine_->kernel().CreateTask("cfs");
  machine_->kernel().SetAffinity(cfs, CpuMask::Single(cpu));
  Time cfs_done = 0;
  machine_->kernel().StartBurst(cfs, Milliseconds(2), [&](Task* t) {
    cfs_done = machine_->now();
    machine_->kernel().Exit(t);
  });
  const Time t0 = machine_->now();
  machine_->kernel().Wake(cfs);
  machine_->RunFor(Milliseconds(10));
  EXPECT_GT(cfs_done, 0);
  EXPECT_LT(cfs_done - t0, Milliseconds(2) + Microseconds(100))
      << "CFS thread should not wait behind the ghOSt hog";
  machine_->RunFor(Milliseconds(100));
  EXPECT_EQ(ghost_hog->state(), TaskState::kDead) << "rescheduled after preemption";
}

TEST_F(AgentTest, AgentIterationsAreBounded) {
  Build(2, std::make_unique<CentralizedFifoPolicy>());
  Worker("w", Microseconds(100), 5, Microseconds(100));
  machine_->RunFor(Milliseconds(10));
  // A spinning agent with poke-based poll-wait shouldn't busy-loop millions
  // of iterations for 5 short bursts.
  EXPECT_LT(process_->iterations(), 2000u);
}

}  // namespace
}  // namespace gs
