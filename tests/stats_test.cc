// Tests for the metrics registry (src/stats): counter/gauge/histogram
// semantics, label handling, the zero-side-effect disabled mode, and the
// deterministic JSON snapshot.
#include "src/stats/stats.h"

#include <gtest/gtest.h>

#include "src/base/json.h"

namespace gs {
namespace {

TEST(StatsTest, CounterStartsAtZeroAndIncrements) {
  StatsRegistry stats;
  stats.Enable();
  Counter* c = stats.GetCounter("requests_total");
  EXPECT_EQ(c->value(), 0);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42);
}

TEST(StatsTest, GaugeSetAndAdd) {
  StatsRegistry stats;
  stats.Enable();
  Gauge* g = stats.GetGauge("queue_depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
}

TEST(StatsTest, HistogramObserves) {
  StatsRegistry stats;
  stats.Enable();
  HistogramMetric* h = stats.GetHistogram("latency_ns");
  for (int i = 1; i <= 100; ++i) {
    h->Observe(i * 1000);
  }
  EXPECT_EQ(h->histogram().count(), 100);
}

TEST(StatsTest, DisabledUpdatesHaveNoSideEffects) {
  StatsRegistry stats;  // disabled by default
  ASSERT_FALSE(stats.enabled());
  Counter* c = stats.GetCounter("c");
  Gauge* g = stats.GetGauge("g");
  HistogramMetric* h = stats.GetHistogram("h");
  c->Inc(100);
  g->Set(5);
  g->Add(5);
  h->Observe(123);
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->histogram().count(), 0);
}

TEST(StatsTest, EnableDisableTogglesAtTheMetric) {
  StatsRegistry stats;
  Counter* c = stats.GetCounter("c");
  c->Inc();  // disabled: dropped
  stats.Enable();
  c->Inc();  // counted
  stats.Disable();
  c->Inc();  // dropped again
  EXPECT_EQ(c->value(), 1);
}

TEST(StatsTest, SameNameAndLabelsReturnsSameObject) {
  StatsRegistry stats;
  Counter* a = stats.GetCounter("txn_commit_total", {{"status", "ESTALE"}});
  Counter* b = stats.GetCounter("txn_commit_total", {{"status", "ESTALE"}});
  Counter* other = stats.GetCounter("txn_commit_total", {{"status", "OK"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(StatsTest, LabelOrderDoesNotMatter) {
  StatsRegistry stats;
  Counter* a = stats.GetCounter("m", {{"a", "1"}, {"b", "2"}});
  Counter* b = stats.GetCounter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(StatsTest, FullNameFormatsSortedLabels) {
  EXPECT_EQ(StatsRegistry::FullName("ipi_total", {}), "ipi_total");
  EXPECT_EQ(StatsRegistry::FullName("txn_commit_total", {{"status", "ESTALE"}}),
            "txn_commit_total{status=ESTALE}");
  EXPECT_EQ(StatsRegistry::FullName("m", {{"z", "1"}, {"a", "2"}}),
            "m{a=2,z=1}");
}

TEST(StatsTest, ResetZeroesValuesButKeepsRegistrations) {
  StatsRegistry stats;
  stats.Enable();
  Counter* c = stats.GetCounter("c");
  Gauge* g = stats.GetGauge("g");
  HistogramMetric* h = stats.GetHistogram("h");
  c->Inc(7);
  g->Set(7);
  h->Observe(7);
  stats.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->histogram().count(), 0);
  // Same object after reset: cached pointers stay valid.
  EXPECT_EQ(stats.GetCounter("c"), c);
  c->Inc();
  EXPECT_EQ(c->value(), 1);
}

TEST(StatsTest, ToJsonParsesAndContainsMetrics) {
  StatsRegistry stats;
  stats.Enable();
  stats.GetCounter("msg_total", {{"type", "WAKEUP"}})->Inc(3);
  stats.GetGauge("depth")->Set(-2);
  stats.GetHistogram("lat")->Observe(1000);

  const std::string json = stats.ToJson();
  std::optional<JsonValue> doc = JsonValue::Parse(json);
  ASSERT_TRUE(doc.has_value());
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* msg = counters->Find("msg_total{type=WAKEUP}");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->number, 3);
  const JsonValue* gauges = doc->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("depth")->number, -2);
  const JsonValue* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* lat = hists->Find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Find("count")->number, 1);
}

TEST(StatsTest, SnapshotIsDeterministic) {
  auto build = [] {
    StatsRegistry stats;
    stats.Enable();
    // Register in different orders; output must be byte-identical.
    stats.GetCounter("zebra")->Inc(1);
    stats.GetCounter("alpha")->Inc(2);
    return stats.ToJson();
  };
  auto build_reversed = [] {
    StatsRegistry stats;
    stats.Enable();
    stats.GetCounter("alpha")->Inc(2);
    stats.GetCounter("zebra")->Inc(1);
    return stats.ToJson();
  };
  EXPECT_EQ(build(), build_reversed());
}

// MergeFrom accumulates another registry's metrics into this one — the path
// a fleet run uses to fold per-machine registries into the harness registry.
TEST(StatsTest, MergeFromAccumulates) {
  StatsRegistry a;
  a.Enable();
  a.GetCounter("requests_total")->Inc(2);
  a.GetGauge("depth")->Set(1);
  a.GetHistogram("lat")->Observe(1000);

  StatsRegistry b;
  b.Enable();
  b.GetCounter("requests_total")->Inc(3);
  b.GetCounter("only_in_b")->Inc(1);
  b.GetGauge("depth")->Set(4);
  b.GetHistogram("lat")->Observe(3000);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("requests_total")->value(), 5);
  EXPECT_EQ(a.GetCounter("only_in_b")->value(), 1);
  EXPECT_EQ(a.GetGauge("depth")->value(), 5);
  EXPECT_EQ(a.GetHistogram("lat")->histogram().count(), 2);
}

TEST(StatsTest, MixingMetricKindsOnOneNameDies) {
  StatsRegistry stats;
  stats.GetCounter("one_name");
  EXPECT_DEATH(stats.GetGauge("one_name"), "");
}

}  // namespace
}  // namespace gs
