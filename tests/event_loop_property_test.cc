// Differential fuzz: the timing-wheel EventLoop against ReferenceEventLoop
// (the original binary-heap engine, kept for exactly this purpose).
//
// A random program of schedule/cancel/run operations — including periodic
// timers and callback-driven spawns and cancels — is generated up front and
// interpreted against both engines. Every observable must match exactly:
// the (time, tag) firing sequence, every Cancel return value, now(), and
// pending_count. Any divergence is a determinism bug in one of the engines.
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/sim/event_loop.h"
#include "src/sim/reference_event_loop.h"

namespace gs {
namespace {

// Everything a callback does is decided at generation time and recorded in
// the spec, so the two engines execute byte-identical programs.
struct EventSpec {
  Duration delta = 0;          // from now() at schedule (or spawn) time
  Duration period = 0;         // 0 = oneshot
  int cancel_self_after = 0;   // periodic: self-cancel after N fires (0 = never)
  int spawn_spec = -1;         // on first fire, schedule specs[spawn_spec]
  int cancel_tag = -1;         // on first fire, cancel the event with this tag
};

struct Op {
  enum Kind { kSchedule, kCancel, kRunUntil, kRunOne } kind;
  int spec = -1;        // kSchedule: index into specs
  int cancel_tag = -1;  // kCancel
  Duration run_delta = 0;  // kRunUntil
};

struct Program {
  std::vector<EventSpec> specs;
  std::vector<Op> ops;
  Time final_deadline = 0;
};

Duration RandomDelta(Rng& rng) {
  // Span the wheel levels: same-bucket, level-0..1, mid, and far deltas.
  switch (rng.NextBounded(5)) {
    case 0:
      return static_cast<Duration>(rng.NextBounded(4));
    case 1:
      return static_cast<Duration>(rng.NextBounded(64));
    case 2:
      return static_cast<Duration>(rng.NextBounded(4096));
    case 3:
      return static_cast<Duration>(rng.NextBounded(1 << 18));
    default:
      return static_cast<Duration>(rng.NextBounded(uint64_t{1} << 31));
  }
}

Program GenerateProgram(uint64_t seed, int num_ops) {
  Rng rng(seed);
  Program p;
  for (int i = 0; i < num_ops; ++i) {
    const uint64_t dice = rng.NextBounded(10);
    if (dice < 5) {
      EventSpec spec;
      spec.delta = RandomDelta(rng);
      if (rng.NextBounded(5) == 0) {
        spec.period = static_cast<Duration>(1 + rng.NextBounded(20000));
        if (rng.NextBounded(2) == 0) {
          spec.cancel_self_after = 1 + static_cast<int>(rng.NextBounded(5));
        }
      }
      if (rng.NextBounded(4) == 0) {
        // Callback schedules a oneshot (possibly delta 0: fires this instant).
        EventSpec spawned;
        spawned.delta = RandomDelta(rng);
        p.specs.push_back(spawned);
        spec.spawn_spec = static_cast<int>(p.specs.size() - 1);
      }
      if (rng.NextBounded(4) == 0) {
        // Callback cancels a random earlier tag (any state: live/fired/...).
        spec.cancel_tag = static_cast<int>(rng.NextBounded(p.specs.size() + 1));
      }
      p.specs.push_back(spec);
      p.ops.push_back(Op{Op::kSchedule, static_cast<int>(p.specs.size() - 1), -1, 0});
    } else if (dice < 7) {
      p.ops.push_back(
          Op{Op::kCancel, -1, static_cast<int>(rng.NextBounded(p.specs.size() + 1)), 0});
    } else if (dice < 9) {
      p.ops.push_back(Op{Op::kRunUntil, -1, -1,
                         static_cast<Duration>(rng.NextBounded(100000))});
    } else {
      p.ops.push_back(Op{Op::kRunOne, -1, -1, 0});
    }
  }
  p.final_deadline = 100000;  // relative: immortal periodics stay bounded
  return p;
}

// Interprets the program against one engine. All mutable state is per-driver
// so the two engines cannot contaminate each other.
template <typename Loop>
class Driver {
 public:
  explicit Driver(const Program& program) : program_(program) {}

  void Run() {
    for (const Op& op : program_.ops) {
      switch (op.kind) {
        case Op::kSchedule:
          Schedule(op.spec);
          break;
        case Op::kCancel:
          observations_.push_back(loop_.Cancel(IdForTag(op.cancel_tag)) ? 1 : 0);
          break;
        case Op::kRunUntil:
          loop_.RunUntil(loop_.now() + op.run_delta);
          observations_.push_back(static_cast<int64_t>(loop_.now()));
          observations_.push_back(static_cast<int64_t>(loop_.pending_count()));
          break;
        case Op::kRunOne:
          observations_.push_back(loop_.RunOne() ? 1 : 0);
          break;
      }
    }
    // Drain: periodics without a self-cancel would run forever, so run to a
    // fixed horizon instead of idle.
    loop_.RunUntil(loop_.now() + program_.final_deadline);
    observations_.push_back(static_cast<int64_t>(loop_.pending_count()));
  }

  const std::vector<std::pair<Time, int>>& fired() const { return fired_; }
  const std::vector<int64_t>& observations() const { return observations_; }

 private:
  EventId IdForTag(int tag) {
    auto it = ids_.find(tag);
    return it == ids_.end() ? kInvalidEventId : it->second;
  }

  void Schedule(int spec_index) {
    const EventSpec& spec = program_.specs[spec_index];
    const int tag = spec_index;  // specs are scheduled at most once per driver
    const Time when = loop_.now() + spec.delta;
    if (spec.period > 0) {
      ids_[tag] = loop_.SchedulePeriodicAt(when, spec.period,
                                           [this, tag] { OnFire(tag); });
    } else {
      ids_[tag] = loop_.ScheduleAt(when, [this, tag] { OnFire(tag); });
    }
  }

  void OnFire(int tag) {
    const EventSpec& spec = program_.specs[tag];
    fired_.push_back({loop_.now(), tag});
    const int count = ++fire_count_[tag];
    if (count == 1) {
      if (spec.spawn_spec >= 0) {
        Schedule(spec.spawn_spec);
      }
      if (spec.cancel_tag >= 0) {
        observations_.push_back(loop_.Cancel(IdForTag(spec.cancel_tag)) ? 1 : 0);
      }
    }
    if (spec.cancel_self_after > 0 && count == spec.cancel_self_after) {
      observations_.push_back(loop_.Cancel(ids_[tag]) ? 1 : 0);
    }
  }

  const Program& program_;
  Loop loop_;
  std::vector<std::pair<Time, int>> fired_;
  std::vector<int64_t> observations_;  // cancel results, now(), pending counts
  std::map<int, EventId> ids_;
  std::map<int, int> fire_count_;
};

class EventLoopDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventLoopDifferentialTest, WheelMatchesReferenceHeap) {
  const Program program = GenerateProgram(GetParam(), 3000);
  Driver<EventLoop> wheel(program);
  Driver<ReferenceEventLoop> reference(program);
  wheel.Run();
  reference.Run();

  ASSERT_EQ(wheel.fired().size(), reference.fired().size());
  for (size_t i = 0; i < wheel.fired().size(); ++i) {
    ASSERT_EQ(wheel.fired()[i], reference.fired()[i])
        << "firing sequence diverges at index " << i << " (seed "
        << GetParam() << ")";
  }
  EXPECT_EQ(wheel.observations(), reference.observations())
      << "cancel results / clock / pending counts diverge (seed " << GetParam()
      << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233, 377, 610, 987, 1597));

}  // namespace
}  // namespace gs
