// Property test: EventLoop vs a naive reference implementation under random
// schedule/cancel/run interleavings.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/sim/event_loop.h"

namespace gs {
namespace {

// Reference model: a sorted multimap of (time, insertion order) -> id.
class ReferenceLoop {
 public:
  uint64_t Schedule(Time when) {
    const uint64_t id = next_id_++;
    events_[{when, seq_++}] = id;
    return id;
  }

  bool Cancel(uint64_t id) {
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->second == id) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  // Runs everything up to `deadline`, appending fired ids to `order`.
  void RunUntil(Time deadline, std::vector<uint64_t>* order) {
    while (!events_.empty() && events_.begin()->first.first <= deadline) {
      order->push_back(events_.begin()->second);
      events_.erase(events_.begin());
    }
    now_ = std::max(now_, deadline);
  }

  Time now() const { return now_; }
  size_t pending() const { return events_.size(); }

 private:
  std::map<std::pair<Time, uint64_t>, uint64_t> events_;
  uint64_t next_id_ = 1;
  uint64_t seq_ = 0;
  Time now_ = 0;
};

class EventLoopPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EventLoopPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  EventLoop loop;
  ReferenceLoop reference;
  std::vector<uint64_t> loop_order, reference_order;
  // Map from reference id -> EventLoop id so cancels target the same event.
  std::map<uint64_t, EventId> id_map;
  std::vector<uint64_t> live_ids;

  for (int op = 0; op < 2000; ++op) {
    const uint64_t dice = rng.NextBounded(10);
    if (dice < 6) {
      // Schedule at a random future time.
      const Time when = loop.now() + static_cast<Duration>(rng.NextBounded(1000));
      const uint64_t ref_id = reference.Schedule(when);
      id_map[ref_id] = loop.ScheduleAt(when, [&loop_order, ref_id] {
        loop_order.push_back(ref_id);
      });
      live_ids.push_back(ref_id);
    } else if (dice < 8 && !live_ids.empty()) {
      // Cancel a random (possibly already-fired) event.
      const uint64_t victim = live_ids[rng.NextBounded(live_ids.size())];
      const bool ref_ok = reference.Cancel(victim);
      const bool loop_ok = loop.Cancel(id_map[victim]);
      EXPECT_EQ(ref_ok, loop_ok) << "cancel disagreement for id " << victim;
    } else {
      // Advance time.
      const Time deadline = loop.now() + static_cast<Duration>(rng.NextBounded(500));
      reference.RunUntil(deadline, &reference_order);
      loop.RunUntil(deadline);
      ASSERT_EQ(loop_order, reference_order) << "divergence at op " << op;
      EXPECT_EQ(loop.now(), reference.now());
    }
  }
  // Drain.
  reference.RunUntil(kTimeNever - 1, &reference_order);
  loop.RunUntilIdle();
  EXPECT_EQ(loop_order, reference_order);
  EXPECT_EQ(loop.pending_count(), reference.pending());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gs
