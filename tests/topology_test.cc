// Unit tests for the topology model, including the paper's machine presets.
#include <gtest/gtest.h>

#include "src/topology/topology.h"

namespace gs {
namespace {

TEST(TopologyTest, Skylake112Shape) {
  const Topology topo = Topology::IntelSkylake112();
  EXPECT_EQ(topo.num_cpus(), 112);
  EXPECT_EQ(topo.num_cores(), 56);
  EXPECT_EQ(topo.num_numa_nodes(), 2);
  EXPECT_EQ(topo.num_ccxs(), 2) << "one L3 per socket";
}

TEST(TopologyTest, SiblingEnumerationLinuxStyle) {
  const Topology topo = Topology::IntelSkylake112();
  // CPU i and i + num_cores are SMT siblings on core i.
  EXPECT_EQ(topo.cpu(0).sibling, 56);
  EXPECT_EQ(topo.cpu(56).sibling, 0);
  EXPECT_EQ(topo.cpu(0).core, topo.cpu(56).core);
  EXPECT_EQ(topo.cpu(27).numa, 0);
  EXPECT_EQ(topo.cpu(28).numa, 1);
  EXPECT_EQ(topo.cpu(83).numa, 0) << "second hyperthreads of socket 0";
  EXPECT_EQ(topo.cpu(84).numa, 1);
}

TEST(TopologyTest, Rome256Ccxs) {
  const Topology topo = Topology::AmdRome256();
  EXPECT_EQ(topo.num_cpus(), 256);
  EXPECT_EQ(topo.num_ccxs(), 32) << "64 cores/socket in 4-core CCXs, 2 sockets";
  // CCX mask: 4 cores x 2 threads = 8 CPUs.
  EXPECT_EQ(topo.CcxMask(0).Count(), 8);
  EXPECT_EQ(topo.NumaMask(0).Count(), 128);
  // Cores 0-3 share a CCX; core 4 does not.
  EXPECT_EQ(topo.cpu(0).ccx, topo.cpu(3).ccx);
  EXPECT_NE(topo.cpu(0).ccx, topo.cpu(4).ccx);
}

TEST(TopologyTest, E5SingleSocket) {
  const Topology topo = Topology::IntelE5_24();
  EXPECT_EQ(topo.num_cpus(), 24);
  EXPECT_EQ(topo.num_numa_nodes(), 1);
}

TEST(TopologyTest, Haswell72) {
  const Topology topo = Topology::IntelHaswell72();
  EXPECT_EQ(topo.num_cpus(), 72);
  EXPECT_EQ(topo.num_cores(), 36);
}

TEST(TopologyTest, DistanceLattice) {
  const Topology topo = Topology::AmdRome256();
  EXPECT_EQ(topo.Distance(0, 0), PlacementDistance::kSameCpu);
  EXPECT_EQ(topo.Distance(0, 128), PlacementDistance::kSameCore);
  EXPECT_EQ(topo.Distance(0, 3), PlacementDistance::kSameCcx);
  EXPECT_EQ(topo.Distance(0, 4), PlacementDistance::kSameNuma);
  EXPECT_EQ(topo.Distance(0, 64), PlacementDistance::kCrossNuma);
}

TEST(TopologyTest, MasksPartitionMachine) {
  const Topology topo = Topology::AmdRome256();
  int total = 0;
  for (int ccx = 0; ccx < topo.num_ccxs(); ++ccx) {
    total += topo.CcxMask(ccx).Count();
  }
  EXPECT_EQ(total, topo.num_cpus());
  EXPECT_EQ((topo.NumaMask(0) & topo.NumaMask(1)).Count(), 0);
}

TEST(TopologyTest, SmtOffHasNoSiblings) {
  const Topology topo = Topology::Make("smt1", 1, 4, /*smt=*/1, 4);
  EXPECT_EQ(topo.num_cpus(), 4);
  for (const CpuInfo& cpu : topo.cpus()) {
    EXPECT_EQ(cpu.sibling, -1);
  }
}

TEST(TopologyTest, NumaDistanceSlit) {
  const Topology topo = Topology::IntelSkylake112();
  EXPECT_EQ(topo.NumaDistance(0, 0), 10);
  EXPECT_EQ(topo.NumaDistance(0, 1), 21);
}

}  // namespace
}  // namespace gs
