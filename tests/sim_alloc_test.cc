// Steady-state allocation test for the whole simulation hot loop.
//
// The event engine test (event_alloc_test) proves the timing wheel is
// allocation-free; this test raises the bar to the full ghOSt stack. A
// fig5-shaped run — spinning global agent, workers that burst / block /
// re-wake, every cycle posting messages and committing transactions — must
// not touch the heap at all once slabs, rings, scratch vectors, and flat
// tables are warm. One heap hit per event is the difference between the
// pre-slab and post-slab profiles, so the budget here is exactly zero.
//
// Also holds the unit tests for the allocators themselves: Slab<T> reuse,
// generation-checked handles, deterministic Clear(), and TidMap's
// backward-shift deletion.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/agent/agent_process.h"
#include "src/base/flat_map.h"
#include "src/base/slab.h"
#include "src/ghost/machine.h"
#include "src/policies/centralized_fifo.h"

namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }

namespace gs {
namespace {

// ---- Slab<T> ---------------------------------------------------------------

struct Tracked {
  explicit Tracked(int v = 0) : value(v) { ++live_count; }
  ~Tracked() { --live_count; }
  int value;
  static int live_count;
};
int Tracked::live_count = 0;

TEST(SlabTest, ReusesFreedSlotsLifo) {
  Slab<Tracked> slab;
  Tracked* a = slab.New(1);
  Tracked* b = slab.New(2);
  EXPECT_EQ(slab.live(), 2u);

  slab.Delete(a);
  EXPECT_EQ(slab.live(), 1u);
  // Freelist is LIFO: the very next New reuses a's slot.
  Tracked* c = slab.New(3);
  EXPECT_EQ(c, a);
  EXPECT_EQ(c->value, 3);
  EXPECT_EQ(slab.live(), 2u);
  slab.Delete(b);
  slab.Delete(c);
  EXPECT_EQ(Tracked::live_count, 0);
}

TEST(SlabTest, HandleGoesStaleOnFreeAndReuse) {
  Slab<Tracked> slab;
  Tracked* obj = slab.New(7);
  const Slab<Tracked>::Handle h = slab.HandleOf(obj);
  ASSERT_EQ(slab.Get(h), obj);

  slab.Delete(obj);
  EXPECT_EQ(slab.Get(h), nullptr) << "freed slot must invalidate the handle";

  // Reuse bumps the generation: the old handle stays stale, the new one works.
  Tracked* again = slab.New(8);
  ASSERT_EQ(again, obj);
  EXPECT_EQ(slab.Get(h), nullptr) << "reused slot must not resurrect old handle";
  EXPECT_EQ(slab.Get(slab.HandleOf(again)), again);
  slab.Delete(again);
}

TEST(SlabTest, NullHandleAndGarbageHandlesAreRejected) {
  Slab<Tracked> slab;
  EXPECT_EQ(slab.Get(Slab<Tracked>::kNullHandle), nullptr);
  EXPECT_EQ(slab.Get(0xdeadbeefdeadbeefull), nullptr);
}

TEST(SlabTest, ClearDestroysAndRestoresDeterministicOrder) {
  Slab<Tracked> slab;
  std::vector<Tracked*> first;
  for (int i = 0; i < 600; ++i) {  // spans multiple 256-slot chunks
    first.push_back(slab.New(i));
  }
  EXPECT_EQ(Tracked::live_count, 600);

  slab.Clear();
  EXPECT_EQ(Tracked::live_count, 0);
  EXPECT_EQ(slab.live(), 0u);
  EXPECT_GE(slab.capacity(), 600u);

  // A cleared slab hands out slots in the same order as a fresh one, so
  // allocation addresses — and anything keyed on them — stay deterministic.
  for (int i = 0; i < 600; ++i) {
    EXPECT_EQ(slab.New(i), first[i]) << "slot order diverged at " << i;
  }
  slab.Clear();
}

TEST(SlabTest, WarmSlabDoesNotAllocate) {
  Slab<Tracked> slab;
  std::vector<Tracked*> objs;
  objs.reserve(256);
  for (int i = 0; i < 256; ++i) {
    objs.push_back(slab.New(i));
  }
  for (Tracked* t : objs) {
    slab.Delete(t);
  }

  const uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    Tracked* a = slab.New(round);
    Tracked* b = slab.New(round + 1);
    slab.Delete(a);
    slab.Delete(b);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before)
      << "warm New/Delete cycles must not touch the heap";
}

// ---- TidMap ----------------------------------------------------------------

TEST(TidMapTest, InsertFindEraseAcrossRehash) {
  TidMap<int> map;
  for (int64_t tid = 0; tid < 1000; ++tid) {
    map.Insert(tid, static_cast<int>(tid * 3));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (int64_t tid = 0; tid < 1000; ++tid) {
    const int* v = map.Find(tid);
    ASSERT_NE(v, nullptr) << tid;
    EXPECT_EQ(*v, tid * 3);
  }
  // Erase every other key; survivors must stay reachable (backward-shift
  // deletion must not break probe chains).
  for (int64_t tid = 0; tid < 1000; tid += 2) {
    EXPECT_TRUE(map.Erase(tid));
  }
  EXPECT_EQ(map.size(), 500u);
  for (int64_t tid = 0; tid < 1000; ++tid) {
    const int* v = map.Find(tid);
    if (tid % 2 == 0) {
      EXPECT_EQ(v, nullptr) << tid;
    } else {
      ASSERT_NE(v, nullptr) << tid;
      EXPECT_EQ(*v, tid * 3);
    }
  }
  EXPECT_FALSE(map.Erase(0)) << "double erase must report absence";
}

TEST(TidMapTest, InsertOverwritesExistingKey) {
  TidMap<int> map;
  map.Insert(42, 1);
  map.Insert(42, 2);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 2);
}

// ---- Full-stack steady state ----------------------------------------------

// Fig 5's worker shape: burst, block, re-wake 100ns later, forever.
void ArmWorkerBurst(Kernel* k, Task* t, Duration burst) {
  k->StartBurst(t, burst, [k, burst](Task* done) {
    k->Block(done);
    k->loop()->ScheduleAfter(Nanoseconds(100), [k, done, burst] {
      ArmWorkerBurst(k, done, burst);
      k->Wake(done);
    });
  });
}

TEST(SimAllocTest, GhostSteadyStateIsAllocationFree) {
  Machine m(Topology::Make("t", 1, 8, 1, 8));
  auto enclave = m.CreateEnclave(CpuMask::AllUpTo(8));
  CentralizedFifoPolicy::Options options;
  options.global_cpu = 0;
  AgentProcess process(&m.kernel(), m.ghost_class(), enclave.get(),
                       std::make_unique<CentralizedFifoPolicy>(options));
  process.Start();

  for (int i = 0; i < 14; ++i) {
    Task* t = m.kernel().CreateTask("spin/" + std::to_string(i));
    enclave->AddTask(t);
    ArmWorkerBurst(&m.kernel(), t, Microseconds(10));
    m.kernel().Wake(t);
  }

  // Warm up every pool the steady state touches: task/message slabs, event
  // slots, scratch vectors, flat tables, queue rings.
  m.RunFor(Milliseconds(5));
  ASSERT_GT(process.iterations(), 100u) << "agent must actually be scheduling";

  const uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t iters_before = process.iterations();

  m.RunFor(Milliseconds(20));

  const uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const uint64_t iters = process.iterations() - iters_before;
  EXPECT_GT(iters, 500u) << "measurement window must cover real scheduling";
  EXPECT_EQ(allocs, 0u)
      << "steady-state scheduling (messages, wakeups, commits) must not "
         "allocate; "
      << allocs << " heap allocations leaked into " << iters << " iterations";
}

}  // namespace
}  // namespace gs
